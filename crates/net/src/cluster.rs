//! A full AllConcur deployment on loopback — every server a
//! [`crate::runtime::NodeRuntime`] in the current process, wired over
//! real TCP/UDP sockets on 127.0.0.1.
//!
//! This is the harness behind the TCP integration tests, the
//! `quickstart` example, and the TCP rows of the benchmark tables.

use crate::event_loop::EventLoopPool;
use crate::link::LinkStatsSnapshot;
use crate::runtime::{Delivery, NodeRuntime, RuntimeOptions};
use allconcur_core::config::{Config, FdMode};
use allconcur_core::ServerId;
use allconcur_graph::Digraph;
use bytes::Bytes;
use std::net::{SocketAddr, TcpListener, UdpSocket};
use std::sync::Arc;
use std::time::Duration;

/// A local multi-server deployment.
///
/// Every node shares one [`EventLoopPool`] sized `min(cores, n)`, so
/// the whole cluster runs on O(cores) threads — not the O(n·d) the old
/// thread-per-socket runtime needed, which is what collapsed pipelined
/// rounds at `n = 16` on small machines.
pub struct LocalCluster {
    nodes: Vec<Option<NodeRuntime>>,
    cfg: Config,
    pool: Arc<EventLoopPool>,
}

impl LocalCluster {
    /// Spawn one server per overlay vertex on ephemeral loopback ports.
    pub fn spawn(graph: Digraph, opts: RuntimeOptions) -> std::io::Result<LocalCluster> {
        let n = graph.order();
        let k = allconcur_graph::connectivity::vertex_connectivity(&graph);
        let cfg = Config {
            graph: Arc::new(graph),
            resilience: k.saturating_sub(1),
            fd_mode: FdMode::Perfect,
            round_window: opts.round_window.max(1),
        };

        // Bind every socket before starting any runtime, so successor
        // connections find listening peers immediately.
        let mut listeners = Vec::with_capacity(n);
        let mut udps = Vec::with_capacity(n);
        let mut tcp_addrs: Vec<SocketAddr> = Vec::with_capacity(n);
        let mut udp_addrs: Vec<SocketAddr> = Vec::with_capacity(n);
        for _ in 0..n {
            let l = TcpListener::bind("127.0.0.1:0")?;
            tcp_addrs.push(l.local_addr()?);
            listeners.push(l);
            let u = UdpSocket::bind("127.0.0.1:0")?;
            udp_addrs.push(u.local_addr()?);
            udps.push(u);
        }

        // One reactor per core (never more than one per node): the
        // event loops multiplex every node's sockets and timers, so
        // thread count stays O(cores) regardless of n and d.
        let threads = if opts.loop_threads > 0 {
            opts.loop_threads
        } else {
            std::thread::available_parallelism().map(usize::from).unwrap_or(1)
        };
        let pool = EventLoopPool::new(threads.min(n).max(1))?;

        let mut nodes = Vec::with_capacity(n);
        // Connections are non-blocking and retried under backoff, so
        // registration order is cosmetic — every listener is already
        // bound above.
        for (i, (listener, udp)) in listeners.into_iter().zip(udps).enumerate() {
            let node = NodeRuntime::start_on(
                &pool,
                i as ServerId,
                cfg.clone(),
                listener,
                udp,
                tcp_addrs.clone(),
                udp_addrs.clone(),
                opts,
            )?;
            nodes.push(Some(node));
        }
        Ok(LocalCluster { nodes, cfg, pool })
    }

    /// Number of configured servers.
    pub fn n(&self) -> usize {
        self.nodes.len()
    }

    /// Number of reactor threads the shared event-loop pool runs on.
    pub fn loop_threads(&self) -> usize {
        self.pool.threads()
    }

    /// The shared configuration.
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// Submit `payload` as server `id`'s message for its current round.
    /// Returns `false` when the server is dead or its protocol input
    /// queue is saturated (backpressure) — the payload was not
    /// accepted.
    #[must_use = "a false return means the payload was shed, not submitted"]
    pub fn broadcast(&self, id: ServerId, payload: Bytes) -> bool {
        match &self.nodes[id as usize] {
            Some(node) => node.broadcast(payload),
            None => false,
        }
    }

    /// Wait for the next delivery at `id`.
    #[deprecated(
        since = "0.2.0",
        note = "use `allconcur_cluster::Cluster::recv_delivery`, which distinguishes \
                timeouts from dead servers and works identically over both backends"
    )]
    pub fn recv_delivery(&self, id: ServerId, timeout: Duration) -> Option<Delivery> {
        self.nodes[id as usize].as_ref()?.recv_delivery(timeout)
    }

    /// Non-blocking receive of the next delivery at `id`.
    pub fn try_recv_delivery(&self, id: ServerId) -> Option<Delivery> {
        self.nodes[id as usize].as_ref()?.try_recv_delivery()
    }

    /// Inject a failure suspicion at server `at`, as if its local FD had
    /// suspected `suspected`.
    pub fn suspect(&self, at: ServerId, suspected: ServerId) {
        if let Some(node) = &self.nodes[at as usize] {
            node.inject_suspicion(suspected);
        }
    }

    /// Adjust every running server's round-pipelining window.
    pub fn set_round_window(&self, window: usize) {
        for node in self.nodes.iter().flatten() {
            node.set_round_window(window);
        }
    }

    /// Drop protocol frames on the directed link `from → to` with
    /// probability `ppm / 1e6` (`0` clears the fault). The drop happens
    /// in `from`'s writer path; heartbeats and the TCP connection are
    /// unaffected — this injects message loss, not a disconnect.
    pub fn set_link_drop(&self, from: ServerId, to: ServerId, ppm: u32) {
        if let Some(node) = &self.nodes[from as usize] {
            node.set_link_drop(to, ppm);
        }
    }

    /// Corrupt protocol frames on the directed link `from → to` with
    /// probability `ppm / 1e6` (`0` clears the fault): one bit of each
    /// sampled frame is flipped in `from`'s writer path. The receiver's
    /// CRC check rejects the frame and the link heals through the
    /// reader-grace/reconnect path — no corrupted payload is delivered.
    pub fn set_link_flip(&self, from: ServerId, to: ServerId, ppm: u32) {
        if let Some(node) = &self.nodes[from as usize] {
            node.set_link_flip(to, ppm);
        }
    }

    /// Fault injection: sever the directed link `from → to` and hold it
    /// down until [`LocalCluster::link_up`]. Outbound frames buffer in
    /// `from`'s bounded Degraded queue for replay on heal.
    pub fn link_down(&self, from: ServerId, to: ServerId) {
        if let Some(node) = &self.nodes[from as usize] {
            node.link_down(to);
        }
    }

    /// Fault injection: sever `from → to` for `down_for`, then
    /// auto-heal and reconnect.
    pub fn link_flap(&self, from: ServerId, to: ServerId, down_for: Duration) {
        if let Some(node) = &self.nodes[from as usize] {
            node.link_flap(to, down_for);
        }
    }

    /// Fault injection: heal a link held down by
    /// [`LocalCluster::link_down`] / [`LocalCluster::link_flap`].
    pub fn link_up(&self, from: ServerId, to: ServerId) {
        if let Some(node) = &self.nodes[from as usize] {
            node.link_up(to);
        }
    }

    /// Resilience counters of server `id` (zeros for a dead server).
    pub fn link_stats(&self, id: ServerId) -> LinkStatsSnapshot {
        self.nodes[id as usize].as_ref().map(|n| n.link_stats()).unwrap_or_default()
    }

    /// Emulate a fail-stop crash of `id`: all its threads stop, sockets
    /// close, heartbeats cease. Peers detect via disconnect/FD.
    pub fn kill(&mut self, id: ServerId) {
        if let Some(node) = self.nodes[id as usize].take() {
            node.shutdown();
        }
    }

    /// [`LocalCluster::kill`], returning the deliveries `id` produced
    /// that the application had not yet received (drained after the
    /// node's threads have joined, so none are lost in the teardown).
    pub fn kill_and_drain(&mut self, id: ServerId) -> Vec<Delivery> {
        match self.nodes[id as usize].take() {
            Some(node) => node.shutdown_and_drain(),
            None => Vec::new(),
        }
    }

    /// Whether `id` is still running.
    pub fn is_running(&self, id: ServerId) -> bool {
        self.nodes[id as usize].is_some()
    }

    /// Run one full round: broadcast `payloads[i]` as server `i` (for
    /// running servers) and collect one delivery from each. Returns
    /// `None` entries for servers that are dead or time out.
    #[deprecated(
        since = "0.2.0",
        note = "drive deployments through `allconcur_cluster::Cluster::run_round`, which \
                works identically over the simulator and TCP"
    )]
    #[allow(deprecated)] // shim calls its deprecated sibling
    pub fn run_round(&self, payloads: &[Bytes], timeout: Duration) -> Vec<Option<Delivery>> {
        assert_eq!(payloads.len(), self.n());
        for (i, p) in payloads.iter().enumerate() {
            let _ = self.broadcast(i as ServerId, p.clone());
        }
        (0..self.n() as ServerId).map(|i| self.recv_delivery(i, timeout)).collect()
    }

    /// Graceful shutdown of every remaining server.
    pub fn shutdown(mut self) {
        for node in self.nodes.iter_mut() {
            if let Some(n) = node.take() {
                n.shutdown();
            }
        }
    }
}

impl Drop for LocalCluster {
    fn drop(&mut self) {
        for node in self.nodes.iter_mut() {
            if let Some(n) = node.take() {
                n.shutdown();
            }
        }
    }
}

#[cfg(test)]
#[allow(deprecated)] // exercises the deprecated lockstep shim on purpose
mod tests {
    use super::*;
    use allconcur_graph::gs::gs_digraph;
    use allconcur_graph::standard::complete_digraph;

    fn payloads(n: usize) -> Vec<Bytes> {
        (0..n).map(|i| Bytes::from(vec![i as u8; 32])).collect()
    }

    #[test]
    fn tcp_round_on_complete_digraph() {
        let cluster = LocalCluster::spawn(complete_digraph(4), RuntimeOptions::default()).unwrap();
        let deliveries = cluster.run_round(&payloads(4), Duration::from_secs(10));
        let first = deliveries[0].as_ref().expect("server 0 delivered");
        assert_eq!(first.messages.len(), 4);
        for (i, d) in deliveries.iter().enumerate() {
            let d = d.as_ref().unwrap_or_else(|| panic!("server {i} timed out"));
            assert_eq!(d.round, 0);
            assert_eq!(d.messages, first.messages, "total order violated at {i}");
        }
        cluster.shutdown();
    }

    #[test]
    fn tcp_multiple_rounds_gs83() {
        let cluster =
            LocalCluster::spawn(gs_digraph(8, 3).unwrap(), RuntimeOptions::default()).unwrap();
        for round in 0..3u64 {
            let deliveries = cluster.run_round(&payloads(8), Duration::from_secs(10));
            for (i, d) in deliveries.iter().enumerate() {
                let d = d.as_ref().unwrap_or_else(|| panic!("server {i} round {round}"));
                assert_eq!(d.round, round);
                assert_eq!(d.messages.len(), 8);
            }
        }
        cluster.shutdown();
    }

    #[test]
    fn tcp_survives_crash() {
        let mut cluster =
            LocalCluster::spawn(gs_digraph(8, 3).unwrap(), RuntimeOptions::default()).unwrap();
        // Round 0: all alive.
        let d0 = cluster.run_round(&payloads(8), Duration::from_secs(10));
        assert!(d0.iter().all(Option::is_some));
        // Kill server 6, then run a round without it.
        cluster.kill(6);
        let mut ps = payloads(8);
        ps[6] = Bytes::new();
        for (i, p) in ps.iter().enumerate() {
            let _ = cluster.broadcast(i as ServerId, p.clone());
        }
        let mut reference: Option<Vec<(ServerId, Bytes)>> = None;
        for i in 0..8u32 {
            if i == 6 {
                continue;
            }
            let d = cluster
                .recv_delivery(i, Duration::from_secs(20))
                .unwrap_or_else(|| panic!("server {i} stuck after crash"));
            assert_eq!(d.round, 1);
            let origins: Vec<ServerId> = d.messages.iter().map(|&(o, _)| o).collect();
            assert!(!origins.contains(&6), "server {i} delivered the dead server's message");
            match &reference {
                None => reference = Some(d.messages),
                Some(r) => assert_eq!(&d.messages, r, "set agreement violated at {i}"),
            }
        }
        cluster.shutdown();
    }
}
