//! Epoll-driven reactor pool — the event-loop runtime behind
//! [`crate::runtime::NodeRuntime`].
//!
//! The paper's implementation runs each server as a single libev event
//! loop (§5). The first TCP runtime here translated that to blocking
//! threads — accept + per-connection reader threads, a protocol thread,
//! transient reconnector threads, and three heartbeat/FD threads —
//! which costs ~`4·n·d` threads for an in-process cluster and collapses
//! under round pipelining at `n = 16` on small machines: the kernel
//! round-robins hundreds of runnable threads and every in-window round
//! pays scheduling latency instead of overlapping it.
//!
//! This module restores the paper's shape: a small pool of reactor
//! threads (one per core by default, shared by every node of a
//! [`crate::cluster::LocalCluster`]), each running an epoll loop over
//! the nodes assigned to it. Everything one node does — accepting,
//! handshakes, frame reads, coalesced vectored writes, non-blocking
//! connects, reconnect backoff, heartbeat emission, failure-detector
//! checks, grace/gate timers — happens on its one assigned reactor, so
//! the per-node state needs no locking at all, exactly like the old
//! protocol thread but without the `O(n·d)` helpers around it.
//!
//! Per-link readiness state machines replace the helper threads:
//!
//! ```text
//!             writable + SO_ERROR=0
//!  Connecting ────────────────────▶ Connected ──▶ (frames go to a
//!      │  ▲                          │   ▲         WriteBuf; one writev
//!      │  └── backoff timer ──┐      │   │         per ready link)
//!      │     (attempt capped) │ write error,      │
//!      ▼                      │ LinkDown/Flap     │ reconnect: replay
//!     Down ◀── link_grace ── Degraded ────────────┘ queued tail in order
//!            exhausted        (bounded FrameQueue)
//! ```
//!
//! Inbound connections run `InHandshake → In`, feeding the same
//! [`crate::codec::FrameReader`] the reader threads used — a read that
//! would block simply returns to the loop instead of parking a thread.
//! Heartbeats and the ◇P failure detector are two timer entries on the
//! same loop (`Δ_hb` sends, `Δ_hb/2` expiry sweeps), reusing
//! [`crate::heartbeat::HeartbeatTable`] and
//! [`crate::heartbeat::AdaptiveTimeout`] semantics unchanged.

use crate::codec::{
    encode_frame, is_corrupt_frame, write_handshake, FrameReader, HANDSHAKE_MAGIC, WIRE_VERSION,
};
use crate::heartbeat::{self, AdaptiveTimeout, HeartbeatTable};
use crate::link::{BackoffPolicy, FrameQueue, LinkStats, WriteBuf};
use crate::runtime::{
    accept_retry_delay, link_seed, same_message, Delivery, NodeInput, RuntimeOptions,
    DROP_PPM_SCALE,
};
use allconcur_core::config::Config;
use allconcur_core::message::Message;
use allconcur_core::server::{Action, Event, Server};
use allconcur_core::ServerId;
use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, Sender};
use mio::{Events, Interest, Poll, Token, Waker};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Token reserved for each reactor's eventfd waker.
const WAKER_TOKEN: Token = Token(usize::MAX);

/// Upper bound on one poll's idle wait: the loop re-checks the stop
/// flag and control channel at least this often.
const IDLE_POLL: Duration = Duration::from_millis(250);

/// Inputs coalesced into one handle-then-flush batch per node per loop
/// iteration, so a firehose of submissions cannot starve the flush (and
/// with it, downstream progress) or the other nodes on the reactor.
const MAX_BATCH_DRAIN: usize = 256;

/// Frames decoded from one inbound connection before the node state is
/// given a chance to act on them (the read resumes immediately after —
/// this bounds working-set, not throughput).
const READ_BATCH: usize = 256;

/// Events pulled per `epoll_wait`.
const EVENTS_CAP: usize = 256;

/// Deadline on one non-blocking connect attempt before it is torn down
/// and retried under backoff (the old reconnector used the same 100 ms
/// as its `connect_timeout`).
const CONNECT_ATTEMPT_TIMEOUT: Duration = Duration::from_millis(100);

/// Wire handshake length (`codec::write_handshake`).
const HANDSHAKE_LEN: usize = 7;

/// A shared pool of reactor threads. One per core by default
/// ([`crate::cluster::LocalCluster`] sizes it `min(cores, n)`); a
/// standalone [`crate::runtime::NodeRuntime::start`] owns a one-thread
/// pool, matching the paper's one-event-loop-per-server deployment.
pub struct EventLoopPool {
    reactors: Vec<ReactorHandle>,
    /// Round-robin cursor for node → reactor assignment.
    next: AtomicUsize,
    /// Node key allocator (keys are never reused).
    next_key: AtomicU64,
    stop: Arc<AtomicBool>,
}

/// Where a registered node lives, for wakes and removal.
#[derive(Debug, Clone, Copy)]
pub(crate) struct NodeToken {
    reactor: usize,
    key: u64,
}

/// Everything a reactor needs to run one node. Built by
/// [`crate::runtime::NodeRuntime`] and shipped through the control
/// channel.
pub(crate) struct NodeSpec {
    pub id: ServerId,
    pub cfg: Config,
    pub listener: TcpListener,
    pub udp: UdpSocket,
    pub tcp_addrs: Vec<SocketAddr>,
    pub udp_addrs: Vec<SocketAddr>,
    pub opts: RuntimeOptions,
    pub input_rx: Receiver<NodeInput>,
    pub delivery_tx: Sender<Delivery>,
    pub stats: Arc<LinkStats>,
}

enum Ctrl {
    /// Install a node; the ack carries registration errors (bad
    /// sockets, epoll exhaustion) back to the caller.
    Register(u64, Box<NodeSpec>, Sender<io::Result<()>>),
    /// Tear a node down (close its sockets, drop its state), then ack.
    Remove(u64, Sender<()>),
}

struct ReactorHandle {
    ctrl_tx: Sender<Ctrl>,
    waker: Arc<Waker>,
    /// Joined on shutdown. Single lock, never nested (lock_order-safe);
    /// `parking_lot` so the guard needs no `.unwrap()`.
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl EventLoopPool {
    /// Spawn a pool of `threads` reactors (clamped to ≥ 1).
    pub fn new(threads: usize) -> io::Result<Arc<EventLoopPool>> {
        let threads = threads.max(1);
        let stop = Arc::new(AtomicBool::new(false));
        let mut reactors = Vec::with_capacity(threads);
        for i in 0..threads {
            match ReactorHandle::spawn(i, stop.clone()) {
                Ok(h) => reactors.push(h),
                Err(e) => {
                    let pool = EventLoopPool {
                        reactors,
                        next: AtomicUsize::new(0),
                        next_key: AtomicU64::new(0),
                        stop,
                    };
                    pool.shutdown();
                    return Err(e);
                }
            }
        }
        Ok(Arc::new(EventLoopPool {
            reactors,
            next: AtomicUsize::new(0),
            next_key: AtomicU64::new(0),
            stop,
        }))
    }

    /// Number of reactor threads.
    pub fn threads(&self) -> usize {
        self.reactors.len()
    }

    /// Register a node on the next reactor (round-robin) and wait for
    /// the installation to complete.
    pub(crate) fn register(&self, spec: NodeSpec) -> io::Result<NodeToken> {
        let reactor = self.next.fetch_add(1, Ordering::Relaxed) % self.reactors.len().max(1);
        let key = self.next_key.fetch_add(1, Ordering::Relaxed);
        let Some(h) = self.reactors.get(reactor) else {
            return Err(io::Error::new(io::ErrorKind::Other, "event-loop pool has no reactors"));
        };
        let (ack_tx, ack_rx) = bounded(1);
        h.ctrl_tx
            .send(Ctrl::Register(key, Box::new(spec), ack_tx))
            .map_err(|_| io::Error::new(io::ErrorKind::Other, "reactor thread is gone"))?;
        let _ = h.waker.wake();
        match ack_rx.recv_timeout(Duration::from_secs(10)) {
            Ok(Ok(())) => Ok(NodeToken { reactor, key }),
            Ok(Err(e)) => Err(e),
            Err(_) => Err(io::Error::new(io::ErrorKind::TimedOut, "reactor did not ack")),
        }
    }

    /// Remove a node: its sockets close (peers observe a disconnect,
    /// exactly like a crash) and its state drops. Blocks until the
    /// reactor has finished the node's final processing, so deliveries
    /// drained afterwards are complete.
    pub(crate) fn remove(&self, token: NodeToken) {
        let Some(h) = self.reactors.get(token.reactor) else { return };
        let (ack_tx, ack_rx) = bounded(1);
        if h.ctrl_tx.send(Ctrl::Remove(token.key, ack_tx)).is_ok() {
            let _ = h.waker.wake();
            let _ = ack_rx.recv_timeout(Duration::from_secs(5));
        }
    }

    /// Wake the reactor a node lives on (after queueing it input).
    pub(crate) fn wake(&self, token: NodeToken) {
        if let Some(h) = self.reactors.get(token.reactor) {
            let _ = h.waker.wake();
        }
    }

    /// Stop every reactor and join its thread. Idempotent; also runs on
    /// drop. Nodes still registered are torn down by their reactor on
    /// the way out.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Relaxed);
        for h in &self.reactors {
            let _ = h.waker.wake();
        }
        for h in &self.reactors {
            let joinable = h.thread.lock().take();
            if let Some(t) = joinable {
                let _ = t.join();
            }
        }
    }
}

impl Drop for EventLoopPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl ReactorHandle {
    fn spawn(index: usize, stop: Arc<AtomicBool>) -> io::Result<ReactorHandle> {
        let poll = Poll::new()?;
        let waker = Arc::new(Waker::new(&poll, WAKER_TOKEN)?);
        // Control messages are rare (node lifecycle only); a small
        // bounded channel is plenty and keeps the queue story uniform.
        let (ctrl_tx, ctrl_rx) = bounded::<Ctrl>(64);
        let reactor = Reactor {
            poll,
            waker: waker.clone(),
            ctrl_rx,
            stop,
            nodes: HashMap::new(),
            sources: HashMap::new(),
            next_token: 0,
        };
        let thread = std::thread::Builder::new()
            .name(format!("ac-loop-{index}"))
            .spawn(move || reactor.run())?;
        Ok(ReactorHandle { ctrl_tx, waker, thread: Mutex::new(Some(thread)) })
    }
}

/// What a registered fd token refers to. Tokens are allocated from a
/// never-reused counter, so a stale event for a closed source simply
/// misses the map.
#[derive(Debug, Clone, Copy)]
enum Source {
    Listener { node: u64 },
    Udp { node: u64 },
    Conn { node: u64 },
}

impl Source {
    fn node(self) -> u64 {
        match self {
            Source::Listener { node } | Source::Udp { node } | Source::Conn { node } => node,
        }
    }
}

/// The per-iteration view a node gets of its reactor: registration
/// surface and the iteration's timestamp. Split from [`Reactor`] so a
/// mutably-borrowed node can still register/deregister sources.
struct Cx<'a> {
    poll: &'a Poll,
    sources: &'a mut HashMap<usize, Source>,
    next_token: &'a mut usize,
    now: Instant,
}

impl Cx<'_> {
    fn alloc_token(&mut self) -> usize {
        let t = *self.next_token;
        *self.next_token += 1;
        t
    }
}

struct Reactor {
    poll: Poll,
    waker: Arc<Waker>,
    ctrl_rx: Receiver<Ctrl>,
    stop: Arc<AtomicBool>,
    nodes: HashMap<u64, NodeState>,
    sources: HashMap<usize, Source>,
    next_token: usize,
}

impl Reactor {
    fn run(mut self) {
        let mut events = Events::with_capacity(EVENTS_CAP);
        // `true` when some node drained a full input batch last pass:
        // poll with a zero timeout so the backlog continues immediately.
        let mut backlog = false;
        loop {
            let timeout = if backlog { Duration::ZERO } else { self.next_timeout() };
            let _ = self.poll.poll(&mut events, Some(timeout));
            if self.stop.load(Ordering::Relaxed) {
                break;
            }
            self.drain_ctrl();
            let now = Instant::now();
            for ev in events.iter() {
                if ev.token() == WAKER_TOKEN {
                    self.waker.drain();
                    continue;
                }
                self.dispatch(ev.token().0, ev.is_readable(), ev.is_writable(), ev.is_error(), now);
            }
            backlog = self.service_nodes(now);
            self.reap_dead();
        }
        self.teardown();
    }

    /// Earliest deadline across every node, capped at [`IDLE_POLL`].
    fn next_timeout(&self) -> Duration {
        let now = Instant::now();
        let mut timeout = IDLE_POLL;
        for node in self.nodes.values() {
            if let Some(d) = node.next_deadline() {
                timeout = timeout.min(d.saturating_duration_since(now));
            }
        }
        timeout
    }

    fn drain_ctrl(&mut self) {
        while let Ok(ctrl) = self.ctrl_rx.try_recv() {
            match ctrl {
                Ctrl::Register(key, spec, ack) => {
                    let mut cx = Cx {
                        poll: &self.poll,
                        sources: &mut self.sources,
                        next_token: &mut self.next_token,
                        now: Instant::now(),
                    };
                    let res = match NodeState::install(&mut cx, key, *spec) {
                        Ok(state) => {
                            self.nodes.insert(key, state);
                            Ok(())
                        }
                        Err(e) => Err(e),
                    };
                    let _ = ack.send(res);
                }
                Ctrl::Remove(key, ack) => {
                    self.remove_node(key);
                    let _ = ack.send(());
                }
            }
        }
    }

    fn dispatch(
        &mut self,
        token: usize,
        readable: bool,
        writable: bool,
        error: bool,
        now: Instant,
    ) {
        let Some(&src) = self.sources.get(&token) else { return };
        let Some(node) = self.nodes.get_mut(&src.node()) else { return };
        let mut cx = Cx {
            poll: &self.poll,
            sources: &mut self.sources,
            next_token: &mut self.next_token,
            now,
        };
        match src {
            Source::Listener { .. } => node.on_accept_ready(&mut cx),
            Source::Udp { .. } => node.on_udp_ready(),
            Source::Conn { .. } => node.on_conn_ready(&mut cx, token, readable, writable, error),
        }
    }

    /// Per-iteration node servicing: drain queued inputs, fire due
    /// timers, flush links that buffered frames. Returns whether any
    /// node still has input backlogged.
    fn service_nodes(&mut self, now: Instant) -> bool {
        let mut cx = Cx {
            poll: &self.poll,
            sources: &mut self.sources,
            next_token: &mut self.next_token,
            now,
        };
        let mut backlog = false;
        for node in self.nodes.values_mut() {
            backlog |= node.drain_inputs(&mut cx);
            node.on_tick(&mut cx);
            node.flush_dirty(&mut cx);
        }
        backlog
    }

    fn reap_dead(&mut self) {
        let dead: Vec<u64> = self.nodes.iter().filter(|(_, n)| n.dead).map(|(&k, _)| k).collect();
        for key in dead {
            self.remove_node(key);
        }
    }

    fn remove_node(&mut self, key: u64) {
        if let Some(mut node) = self.nodes.remove(&key) {
            let mut cx = Cx {
                poll: &self.poll,
                sources: &mut self.sources,
                next_token: &mut self.next_token,
                now: Instant::now(),
            };
            node.teardown(&mut cx);
        }
    }

    fn teardown(&mut self) {
        let keys: Vec<u64> = self.nodes.keys().copied().collect();
        for key in keys {
            self.remove_node(key);
        }
    }
}

/// Outbound-link writer states (see the module diagram).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OutState {
    /// Initial non-blocking connect in progress (attempt-capped).
    Connecting,
    /// Healthy: frames go to the connection's [`WriteBuf`].
    Connected,
    /// Disconnected within grace (or fault-held): frames buffer in the
    /// bounded [`FrameQueue`] for replay on reconnect.
    Degraded,
    /// Grace/attempts exhausted: frames are shed; the FD owns the
    /// peer's fate (only fault-injection heal revives the link).
    Down,
}

/// Fault-injection hold on a link.
enum Hold {
    /// Held until an explicit `LinkUp`.
    Manual,
    /// Held until the instant passes (a flap's auto-heal).
    Until(Instant),
}

/// One outbound link's state machine plus timers. The reconnect
/// backoff that used to live in a transient reconnector thread is now
/// the (`next_attempt`, `attempt_deadline`, `attempt`) triple driven by
/// the loop's timer sweep.
struct OutLink {
    state: OutState,
    /// Token of the connection carrying this link (connecting or
    /// connected), if any.
    conn: Option<usize>,
    /// Degraded-side buffer, replayed in order on reconnect. Empty
    /// while Connected (frames go to the conn's `WriteBuf` instead).
    queue: FrameQueue,
    /// Degraded grace deadline (`None` while fault-held: held links
    /// heal, they do not expire).
    grace_deadline: Option<Instant>,
    /// When to launch the next connect attempt.
    next_attempt: Option<Instant>,
    /// Deadline on the in-flight connect attempt.
    attempt_deadline: Option<Instant>,
    /// Consecutive failed attempts (drives backoff; caps the initial
    /// Connecting phase at `RuntimeOptions::connect_attempts`).
    attempt: u32,
    hold: Option<Hold>,
    policy: BackoffPolicy,
    addr: SocketAddr,
}

/// What one registered connection is doing.
enum ConnKind {
    /// Outbound connect in flight; writability resolves it via
    /// `SO_ERROR`.
    OutConnecting { to: ServerId },
    /// Established outbound link: frames coalesce in the `WriteBuf`
    /// and leave in vectored writes on writability.
    Out { to: ServerId, wb: WriteBuf },
    /// Inbound connection reading its 7-byte handshake.
    InHandshake { buf: [u8; HANDSHAKE_LEN], got: usize },
    /// Established inbound link from predecessor `from`.
    In { from: ServerId, reader: FrameReader },
}

struct Conn {
    stream: TcpStream,
    interest: Interest,
    kind: ConnKind,
}

/// One node's complete state, owned by exactly one reactor thread —
/// the old `ProtocolState` plus the socket state machines that used to
/// be threads.
struct NodeState {
    id: ServerId,
    key: u64,
    server: Server,
    input_rx: Receiver<NodeInput>,
    delivery_tx: Sender<Delivery>,
    actions: Vec<Action>,
    /// Links whose `WriteBuf` gained frames this batch; flushed once
    /// per loop iteration (one `writev` per ready link per batch).
    dirty: Vec<ServerId>,
    /// Peer `BCAST`s held back while their round awaits the
    /// application's submission (see `RuntimeOptions::app_grace`).
    deferred: VecDeque<(ServerId, Message)>,
    gate_deadline: Option<Instant>,
    app_grace: Duration,
    drop_ppm: HashMap<ServerId, u32>,
    drop_rng: u64,
    flip_ppm: HashMap<ServerId, u32>,
    flip_rng: u64,
    link_grace: Duration,
    link_queue_high: usize,
    link_queue_low: usize,
    connect_attempts: u32,
    suspect_on_disconnect: bool,
    stats: Arc<LinkStats>,
    adaptive: AdaptiveTimeout,
    /// Live inbound connections per predecessor (a reconnect can
    /// briefly overlap the old socket, so this counts).
    reader_counts: HashMap<ServerId, u32>,
    /// Predecessors whose last inbound connection dropped; suspicion
    /// fires when the deadline passes without a reconnect.
    reader_grace: HashMap<ServerId, Instant>,
    links: HashMap<ServerId, OutLink>,
    conns: HashMap<usize, Conn>,
    listener: TcpListener,
    listener_token: usize,
    /// Accept muted after a real accept error (fd exhaustion): the
    /// listener is deregistered and re-armed after a capped backoff
    /// instead of spinning hot.
    listener_muted: bool,
    accept_failures: u32,
    accept_resume: Option<Instant>,
    udp: UdpSocket,
    udp_token: usize,
    hb_frame: [u8; heartbeat::HEARTBEAT_LEN],
    succ_udp: Vec<SocketAddr>,
    hb_period: Duration,
    fd_poll: Duration,
    next_hb_send: Instant,
    next_fd_check: Instant,
    hb_table: Arc<HeartbeatTable>,
    /// Application hung up or the node was shut down: the reactor reaps
    /// it (closing every socket) at the end of the iteration.
    dead: bool,
}

impl NodeState {
    fn install(cx: &mut Cx<'_>, key: u64, spec: NodeSpec) -> io::Result<NodeState> {
        let NodeSpec {
            id,
            cfg,
            listener,
            udp,
            tcp_addrs,
            udp_addrs,
            opts,
            input_rx,
            delivery_tx,
            stats,
        } = spec;
        listener.set_nonblocking(true)?;
        udp.set_nonblocking(true)?;

        let graph = cfg.graph.clone();
        let successors: Vec<ServerId> = graph.successors(id).to_vec();
        let predecessors: Vec<ServerId> = graph.predecessors(id).to_vec();

        let listener_token = cx.alloc_token();
        cx.poll.register(&listener, Token(listener_token), Interest::READABLE)?;
        cx.sources.insert(listener_token, Source::Listener { node: key });
        let udp_token = cx.alloc_token();
        if let Err(e) = cx.poll.register(&udp, Token(udp_token), Interest::READABLE) {
            let _ = cx.poll.deregister(&listener);
            cx.sources.remove(&listener_token);
            return Err(e);
        }
        cx.sources.insert(udp_token, Source::Udp { node: key });

        let mut links = HashMap::new();
        for &succ in &successors {
            let Some(&addr) = tcp_addrs.get(succ as usize) else {
                continue; // mis-sized address table: the link never forms
            };
            links.insert(
                succ,
                OutLink {
                    state: OutState::Connecting,
                    conn: None,
                    queue: FrameQueue::new(opts.link_queue_high, opts.link_queue_low),
                    grace_deadline: None,
                    // First attempt fires on this iteration's tick.
                    next_attempt: Some(cx.now),
                    attempt_deadline: None,
                    attempt: 0,
                    hold: None,
                    policy: BackoffPolicy::new(
                        opts.connect_backoff,
                        opts.connect_backoff_cap,
                        link_seed(id, succ),
                    ),
                    addr,
                },
            );
        }

        let succ_udp: Vec<SocketAddr> =
            successors.iter().filter_map(|&s| udp_addrs.get(s as usize).copied()).collect();
        // The ◇P recipe (§3.3.2): the suspicion timeout starts at Δ_to
        // and grows on evidence of false suspicion (a link flap healing
        // under grace), capped so genuinely dead peers are still caught.
        let adaptive_cap = opts.fd.timeout.checked_mul(8).unwrap_or(opts.fd.timeout);
        let fd_poll = (opts.fd.heartbeat_period / 2).max(Duration::from_millis(1));

        Ok(NodeState {
            id,
            key,
            server: Server::new(cfg, id),
            input_rx,
            delivery_tx,
            actions: Vec::new(),
            dirty: Vec::new(),
            deferred: VecDeque::new(),
            gate_deadline: None,
            app_grace: opts.app_grace,
            drop_ppm: HashMap::new(),
            drop_rng: 0x9e37_79b9_7f4a_7c15 ^ (id as u64 + 1),
            flip_ppm: HashMap::new(),
            flip_rng: 0x6c62_272e_07bb_0142 ^ (id as u64 + 1),
            link_grace: opts.link_grace,
            link_queue_high: opts.link_queue_high,
            link_queue_low: opts.link_queue_low,
            connect_attempts: opts.connect_attempts,
            suspect_on_disconnect: opts.suspect_on_disconnect,
            stats,
            adaptive: AdaptiveTimeout::new(opts.fd.timeout, adaptive_cap.max(opts.fd.timeout)),
            reader_counts: HashMap::new(),
            reader_grace: HashMap::new(),
            links,
            conns: HashMap::new(),
            listener,
            listener_token,
            listener_muted: false,
            accept_failures: 0,
            accept_resume: None,
            udp,
            udp_token,
            hb_frame: heartbeat::encode_heartbeat(id),
            succ_udp,
            hb_period: opts.fd.heartbeat_period,
            fd_poll,
            next_hb_send: cx.now,
            next_fd_check: cx.now + fd_poll,
            hb_table: HeartbeatTable::new(&predecessors),
            dead: false,
        })
    }

    // --- protocol core (ported from the threaded ProtocolState) -------

    /// Feed one event and act on the outputs. (Payloads submitted
    /// beyond the current round queue inside the state machine and open
    /// later rounds by themselves — the §5 batching flow.)
    fn process(&mut self, event: Event) {
        if self.dead {
            return;
        }
        self.actions.clear();
        self.server.handle_into(event, &mut self.actions);
        self.write_actions();
    }

    /// Route sends (encoding each distinct message **once** and fanning
    /// the same refcounted frame to every destination) and forward
    /// deliveries. Links are only marked dirty here; the reactor
    /// flushes them per iteration.
    fn write_actions(&mut self) {
        // The state machine emits fan-outs as consecutive `Send`s that
        // clone one message, so a one-entry frame cache captures the
        // whole run; a miss just re-encodes.
        let mut frame: Option<(Message, Bytes)> = None;
        let mut actions = std::mem::take(&mut self.actions);
        for action in actions.drain(..) {
            match action {
                Action::Send { to, msg } => {
                    // Injected send-loss: the frame never leaves the
                    // writer path.
                    if let Some(&ppm) = self.drop_ppm.get(&to) {
                        let mut x = self.drop_rng;
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        self.drop_rng = x;
                        if x.wrapping_mul(0x2545_f491_4f6c_dd1d) % DROP_PPM_SCALE < ppm as u64 {
                            continue;
                        }
                    }
                    if !self.links.contains_key(&to) {
                        continue;
                    }
                    let cached = match &frame {
                        Some((m, f)) if same_message(m, &msg) => f.clone(),
                        _ => match encode_frame(&msg) {
                            Ok(f) => {
                                frame = Some((msg, f.clone()));
                                f
                            }
                            Err(_) => continue, // oversized: drop, FD handles the peer
                        },
                    };
                    let outgoing = self.maybe_flip(&to, cached);
                    self.send_frame(to, outgoing);
                }
                Action::Deliver { round, messages } => {
                    if self.delivery_tx.send(Delivery { round, messages }).is_err() {
                        self.dead = true;
                        break;
                    }
                }
            }
        }
        self.actions = actions; // reuse the allocation
    }

    /// Injected wire corruption: with probability `flip_ppm[to] / 1e6`,
    /// copy the frame and flip one bit at an rng-chosen offset (header
    /// bytes included). The shared fan-out frame is never mutated in
    /// place; only this destination sees the damage.
    fn maybe_flip(&mut self, to: &ServerId, frame: Bytes) -> Bytes {
        let Some(&ppm) = self.flip_ppm.get(to) else { return frame };
        let mut x = self.flip_rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.flip_rng = x;
        let sample = x.wrapping_mul(0x2545_f491_4f6c_dd1d);
        if sample % DROP_PPM_SCALE >= ppm as u64 || frame.is_empty() {
            return frame;
        }
        let bit = (sample >> 24) as usize % (frame.len() * 8);
        let mut corrupted = frame.to_vec();
        corrupted[bit / 8] ^= 1 << (bit % 8);
        Bytes::from(corrupted)
    }

    /// Route one encoded frame through the link's state machine.
    fn send_frame(&mut self, to: ServerId, frame: Bytes) {
        let (state, conn_tok) = match self.links.get(&to) {
            Some(l) => (l.state, l.conn),
            None => return,
        };
        match state {
            OutState::Connected => {
                if let Some(tok) = conn_tok {
                    if let Some(conn) = self.conns.get_mut(&tok) {
                        if let ConnKind::Out { wb, .. } = &mut conn.kind {
                            wb.push(frame);
                            if !self.dirty.contains(&to) {
                                self.dirty.push(to);
                            }
                            return;
                        }
                    }
                }
                self.stats.on_shed(1);
            }
            OutState::Connecting | OutState::Degraded => {
                let mut shed = false;
                if let Some(link) = self.links.get_mut(&to) {
                    shed = !link.queue.push(frame);
                }
                if shed {
                    self.stats.on_shed(1);
                }
            }
            OutState::Down => self.stats.on_shed(1),
        }
    }

    /// Whether `msg` must wait for the application: a `BCAST` belonging
    /// to a round the application has neither broadcast in nor queued a
    /// payload for.
    fn gated(&self, msg: &Message) -> bool {
        matches!(msg, Message::Bcast { .. }) && msg.round() >= self.server.next_unsubmitted_round()
    }

    /// One message decoded off predecessor `from`'s link. Defers a
    /// gated BCAST — and, to preserve **per-link FIFO**, any message
    /// arriving behind a deferred one from the same sender: a `FAIL`
    /// must never overtake a gated `BCAST` it arrived behind (the
    /// tracking digraphs' edge refutation depends on that order).
    fn input_net(&mut self, from: ServerId, msg: Message) {
        if self.dead {
            return;
        }
        if self.deferred.iter().any(|&(f, _)| f == from) || self.gated(&msg) {
            if self.gate_deadline.is_none() {
                self.gate_deadline = Some(Instant::now() + self.app_grace);
            }
            self.deferred.push_back((from, msg));
        } else {
            self.process(Event::Receive { from, msg });
        }
        self.release_deferred(false);
    }

    /// Process every deferred peer message that may be released,
    /// preserving per-link FIFO. `force` releases the oldest
    /// still-gated message unconditionally — the grace expired, so the
    /// state machine answers with an empty broadcast (Algorithm 1 line
    /// 15) rather than stalling the cluster.
    fn release_deferred(&mut self, mut force: bool) {
        if self.dead {
            return;
        }
        let mut i = 0;
        while i < self.deferred.len() {
            let from = self.deferred[i].0;
            // Per-link FIFO: an earlier deferred message from the same
            // sender must go first. (The head, i == 0, is never blocked.)
            if self.deferred.iter().take(i).any(|&(f, _)| f == from) {
                i += 1;
                continue;
            }
            if force || !self.gated(&self.deferred[i].1) {
                force = false; // the grace force-releases exactly one
                let Some((from, msg)) = self.deferred.remove(i) else { break };
                self.process(Event::Receive { from, msg });
                if self.dead {
                    return;
                }
                // Processing can open rounds / advance the frontier and
                // ungate earlier-queued messages: re-scan from the front.
                i = 0;
            } else {
                i += 1;
            }
        }
        if self.deferred.is_empty() {
            self.gate_deadline = None;
        } else if self.gate_deadline.is_none() {
            self.gate_deadline = Some(Instant::now() + self.app_grace);
        }
    }

    /// A predecessor's inbound connection completed its handshake:
    /// cancel any pending disconnect grace — the flap healed, which is
    /// exactly the §3.3.2 false-suspicion evidence the adaptive FD
    /// timeout feeds on.
    fn on_reader_up(&mut self, from: ServerId) {
        *self.reader_counts.entry(from).or_insert(0) += 1;
        if self.reader_grace.remove(&from).is_some() {
            self.stats.on_healed();
            self.adaptive.report_false_suspicion();
        }
    }

    /// A predecessor's inbound connection dropped: when it was the
    /// last one, start the disconnect grace instead of suspecting
    /// immediately.
    fn on_reader_gone(&mut self, from: ServerId) {
        self.stats.on_reader_disconnect();
        let count = self.reader_counts.entry(from).or_insert(0);
        *count = count.saturating_sub(1);
        if *count > 0 {
            return;
        }
        if self.link_grace.is_zero() {
            // Degenerate configuration: the pre-resilience immediate
            // suspicion path.
            if self.suspect_on_disconnect {
                self.stats.on_suspicion();
                self.process(Event::Suspect { suspect: from });
            }
            return;
        }
        self.reader_grace.entry(from).or_insert_with(|| Instant::now() + self.link_grace);
    }

    // --- input channel -------------------------------------------------

    /// Drain up to [`MAX_BATCH_DRAIN`] queued inputs. Returns whether
    /// the cap was hit (more input is waiting).
    fn drain_inputs(&mut self, cx: &mut Cx<'_>) -> bool {
        if self.dead {
            return false;
        }
        let mut n = 0;
        while n < MAX_BATCH_DRAIN {
            match self.input_rx.try_recv() {
                Ok(input) => {
                    n += 1;
                    self.handle_input(cx, input);
                    if self.dead {
                        return false;
                    }
                }
                Err(_) => return false,
            }
        }
        true
    }

    fn handle_input(&mut self, cx: &mut Cx<'_>, input: NodeInput) {
        match input {
            NodeInput::Broadcast(payload) => self.process(Event::ABroadcast(payload)),
            NodeInput::Suspect(s) => {
                // The FD and disconnect paths can both report the same
                // suspicion; the state machine dedups via F_i.
                self.process(Event::Suspect { suspect: s })
            }
            NodeInput::SetWindow(w) => self.server.set_round_window(w),
            NodeInput::SetLinkDrop { to, ppm } => {
                if ppm == 0 {
                    self.drop_ppm.remove(&to);
                } else {
                    self.drop_ppm.insert(to, ppm);
                }
            }
            NodeInput::SetLinkFlip { to, ppm } => {
                if ppm == 0 {
                    self.flip_ppm.remove(&to);
                } else {
                    self.flip_ppm.insert(to, ppm);
                }
            }
            NodeInput::LinkDown { to } => self.fault_hold(cx, to, Hold::Manual),
            NodeInput::LinkFlap { to, down_for } => {
                self.fault_hold(cx, to, Hold::Until(cx.now + down_for))
            }
            NodeInput::LinkUp { to } => self.heal_link(cx, to),
        }
        self.release_deferred(false);
    }

    // --- readiness handlers --------------------------------------------

    fn on_accept_ready(&mut self, cx: &mut Cx<'_>) {
        if self.listener_muted {
            return;
        }
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    self.accept_failures = 0;
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let tok = cx.alloc_token();
                    if cx.poll.register(&stream, Token(tok), Interest::READABLE).is_err() {
                        continue;
                    }
                    cx.sources.insert(tok, Source::Conn { node: self.key });
                    self.conns.insert(
                        tok,
                        Conn {
                            stream,
                            interest: Interest::READABLE,
                            kind: ConnKind::InHandshake { buf: [0; HANDSHAKE_LEN], got: 0 },
                        },
                    );
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    // A real accept error (typically fd exhaustion):
                    // count it, mute the listener, and re-arm after a
                    // capped backoff — the node degrades instead of
                    // spinning hot on a failing accept.
                    self.stats.on_accept_failure();
                    self.accept_failures = self.accept_failures.saturating_add(1);
                    let _ = cx.poll.deregister(&self.listener);
                    cx.sources.remove(&self.listener_token);
                    self.listener_muted = true;
                    self.accept_resume = Some(cx.now + accept_retry_delay(self.accept_failures));
                    break;
                }
            }
        }
    }

    fn on_udp_ready(&mut self) {
        let mut buf = [0u8; 16];
        loop {
            match self.udp.recv_from(&mut buf) {
                Ok((n, _)) => {
                    if let Some(from) = heartbeat::decode_heartbeat(&buf[..n]) {
                        self.hb_table.record(from);
                    }
                    // else: malformed datagram, drop
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
    }

    fn on_conn_ready(
        &mut self,
        cx: &mut Cx<'_>,
        tok: usize,
        readable: bool,
        writable: bool,
        error: bool,
    ) {
        enum K {
            Connecting(ServerId),
            Out(ServerId),
            Handshake,
            In(ServerId),
        }
        let kind = match self.conns.get(&tok) {
            Some(c) => match &c.kind {
                ConnKind::OutConnecting { to } => K::Connecting(*to),
                ConnKind::Out { to, .. } => K::Out(*to),
                ConnKind::InHandshake { .. } => K::Handshake,
                ConnKind::In { from, .. } => K::In(*from),
            },
            None => return, // stale event for a closed conn
        };
        match kind {
            K::Connecting(to) => self.on_connect_ready(cx, tok, to, error),
            K::Out(to) => self.on_out_ready(cx, tok, to, readable, writable, error),
            K::Handshake => {
                if readable || error {
                    self.on_handshake_ready(cx, tok);
                }
            }
            K::In(from) => {
                if readable || error {
                    self.on_in_ready(cx, tok, from);
                }
            }
        }
    }

    /// A non-blocking connect resolved: writability with a clear
    /// `SO_ERROR` means established; anything else is a failed attempt.
    fn on_connect_ready(&mut self, cx: &mut Cx<'_>, tok: usize, to: ServerId, error: bool) {
        let ok = match self.conns.get_mut(&tok) {
            Some(conn) => !error && matches!(conn.stream.take_error(), Ok(None)),
            None => return,
        };
        if ok {
            self.establish_out(cx, tok, to);
        } else {
            self.close_conn(cx, tok);
            if let Some(link) = self.links.get_mut(&to) {
                if link.conn == Some(tok) {
                    link.conn = None;
                    link.attempt_deadline = None;
                }
            }
            self.schedule_retry(cx, to);
        }
    }

    /// Promote a completed connect into the Connected state: handshake
    /// first, then the buffered tail in order, all through the
    /// coalescing `WriteBuf`.
    fn establish_out(&mut self, cx: &mut Cx<'_>, tok: usize, to: ServerId) {
        let was_degraded = match self.links.get(&to) {
            Some(l) => l.state == OutState::Degraded,
            None => {
                self.close_conn(cx, tok);
                return;
            }
        };
        let mut wb = WriteBuf::new();
        let mut hs = Vec::with_capacity(HANDSHAKE_LEN);
        let _ = write_handshake(&mut hs, self.id); // Vec write: infallible
        wb.push(Bytes::from(hs));
        let mut replayed = 0u64;
        if let Some(link) = self.links.get_mut(&to) {
            while let Some(f) = link.queue.pop() {
                wb.push(f);
                replayed += 1;
            }
            link.state = OutState::Connected;
            link.conn = Some(tok);
            link.grace_deadline = None;
            link.next_attempt = None;
            link.attempt_deadline = None;
            link.attempt = 0;
        }
        if let Some(conn) = self.conns.get_mut(&tok) {
            conn.stream.set_nodelay(true).ok();
            conn.kind = ConnKind::Out { to, wb };
        }
        if was_degraded {
            // Initial-connect establishment is not a "reconnect": only
            // a Degraded→Connected transition heals a prior failure.
            self.stats.on_reconnect();
            if replayed > 0 {
                self.stats.on_replayed(replayed);
            }
        }
        self.set_interest(cx, tok, Interest::READABLE | Interest::WRITABLE);
        if !self.dirty.contains(&to) {
            self.dirty.push(to);
        }
    }

    /// Readiness on an established outbound link. The peer never sends
    /// protocol data on this direction, so readability is purely a
    /// disconnect probe (EOF/RST show up here long before a write
    /// fails).
    fn on_out_ready(
        &mut self,
        cx: &mut Cx<'_>,
        tok: usize,
        to: ServerId,
        readable: bool,
        writable: bool,
        error: bool,
    ) {
        if error {
            self.degrade(cx, to);
            return;
        }
        if readable {
            let mut dead = false;
            if let Some(conn) = self.conns.get_mut(&tok) {
                let mut scratch = [0u8; 1024];
                loop {
                    match conn.stream.read(&mut scratch) {
                        Ok(0) => {
                            dead = true;
                            break;
                        }
                        Ok(_) => {} // stray bytes on a write-only link: ignore
                        Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(_) => {
                            dead = true;
                            break;
                        }
                    }
                }
            }
            if dead {
                self.degrade(cx, to);
                return;
            }
        }
        if writable {
            self.flush_link(cx, to);
        }
    }

    fn on_handshake_ready(&mut self, cx: &mut Cx<'_>, tok: usize) {
        // `Some(None)`: close the conn; `Some(Some(id))`: handshake done.
        let mut result: Option<Option<ServerId>> = None;
        if let Some(conn) = self.conns.get_mut(&tok) {
            if let ConnKind::InHandshake { buf, got } = &mut conn.kind {
                while *got < HANDSHAKE_LEN {
                    match conn.stream.read(&mut buf[*got..]) {
                        Ok(0) => {
                            result = Some(None);
                            break;
                        }
                        Ok(k) => *got += k,
                        Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(_) => {
                            result = Some(None);
                            break;
                        }
                    }
                }
                if result.is_none() && *got == HANDSHAKE_LEN {
                    result = if buf[..2] == HANDSHAKE_MAGIC && buf[2] == WIRE_VERSION {
                        Some(Some(ServerId::from_le_bytes([buf[3], buf[4], buf[5], buf[6]])))
                    } else {
                        Some(None) // bad magic/version: drop the conn
                    };
                }
            }
        }
        match result {
            None => {} // handshake still partial: wait for more bytes
            Some(None) => {
                self.close_conn(cx, tok);
            }
            Some(Some(from)) => {
                if let Some(conn) = self.conns.get_mut(&tok) {
                    conn.kind = ConnKind::In { from, reader: FrameReader::new() };
                }
                self.on_reader_up(from);
                // Frames behind the handshake are still in the socket
                // buffer; level-triggered epoll re-reports them.
            }
        }
    }

    fn on_in_ready(&mut self, cx: &mut Cx<'_>, tok: usize, from: ServerId) {
        loop {
            let mut msgs: Vec<Message> = Vec::new();
            let mut closed = false;
            let mut corrupt = false;
            match self.conns.get_mut(&tok) {
                Some(conn) => {
                    if let ConnKind::In { reader, .. } = &mut conn.kind {
                        while msgs.len() < READ_BATCH {
                            match reader.read_frame(&mut conn.stream) {
                                Ok(Some(msg)) => msgs.push(msg),
                                Ok(None) => break, // would block
                                Err(e) => {
                                    // A corrupt frame (CRC/decode) is a
                                    // *link* fault: count it, then drop
                                    // the connection exactly like an EOF
                                    // — the stream past a bad frame
                                    // cannot be trusted to be framed.
                                    corrupt = is_corrupt_frame(&e);
                                    closed = true;
                                    break;
                                }
                            }
                        }
                    }
                }
                None => return,
            }
            let full_batch = msgs.len() == READ_BATCH;
            for msg in msgs {
                self.input_net(from, msg);
                if self.dead {
                    return;
                }
            }
            if closed {
                if corrupt {
                    self.stats.on_corrupt_frame();
                }
                self.close_conn(cx, tok);
                self.on_reader_gone(from);
                return;
            }
            if !full_batch {
                // The reader drained to a would-block: nothing buffered
                // in the FrameReader either (it only stops mid-frame),
                // so level-triggered epoll owns the resume.
                return;
            }
        }
    }

    // --- outbound link management --------------------------------------

    /// Launch a non-blocking connect attempt for `to`.
    fn start_connect(&mut self, cx: &mut Cx<'_>, to: ServerId) {
        let addr = match self.links.get_mut(&to) {
            Some(link) => {
                if link.hold.is_some() || link.conn.is_some() {
                    link.next_attempt = None;
                    return;
                }
                link.next_attempt = None;
                link.addr
            }
            None => return,
        };
        match mio::net::connect_nonblocking(addr) {
            Ok(stream) => {
                let tok = cx.alloc_token();
                if cx.poll.register(&stream, Token(tok), Interest::WRITABLE).is_err() {
                    self.schedule_retry(cx, to);
                    return;
                }
                cx.sources.insert(tok, Source::Conn { node: self.key });
                self.conns.insert(
                    tok,
                    Conn {
                        stream,
                        interest: Interest::WRITABLE,
                        kind: ConnKind::OutConnecting { to },
                    },
                );
                if let Some(link) = self.links.get_mut(&to) {
                    link.conn = Some(tok);
                    link.attempt_deadline = Some(cx.now + CONNECT_ATTEMPT_TIMEOUT);
                }
            }
            Err(_) => self.schedule_retry(cx, to),
        }
    }

    /// A connect attempt failed: back off (deterministic per-link
    /// jitter, so reconnect storms de-phase) or, for an initial connect
    /// that exhausted its attempt budget, drop the link to Down.
    fn schedule_retry(&mut self, cx: &mut Cx<'_>, to: ServerId) {
        let cap = self.connect_attempts.max(1);
        let now = cx.now;
        let mut exhausted = false;
        if let Some(link) = self.links.get_mut(&to) {
            link.attempt = link.attempt.saturating_add(1);
            if link.state == OutState::Connecting && link.attempt >= cap {
                exhausted = true;
            } else {
                link.next_attempt = Some(now + link.policy.delay(link.attempt));
            }
        }
        if exhausted {
            self.link_to_down(cx, to, false);
        }
    }

    /// Write/connect failure on a Connected link: close the conn,
    /// recover its unwritten frames into the Degraded queue (bounded by
    /// the put-back budget), and start the grace clock + reconnect
    /// timer.
    fn degrade(&mut self, cx: &mut Cx<'_>, to: ServerId) {
        match self.links.get(&to) {
            Some(l) if l.state == OutState::Connected => {}
            _ => return, // duplicate events race: only one degrade per episode
        }
        let mut leftover = Vec::new();
        if let Some(tok) = self.links.get(&to).and_then(|l| l.conn) {
            if let Some(mut conn) = self.close_conn(cx, tok) {
                if let ConnKind::Out { wb, .. } = &mut conn.kind {
                    // The head frame replays whole from byte 0 on the
                    // fresh connection — the peer discarded the partial
                    // tail along with the dead socket.
                    leftover = wb.take_frames();
                }
            }
        }
        self.dirty.retain(|&d| d != to);
        let now = cx.now;
        let grace = self.link_grace;
        let mut shed = 0u64;
        if let Some(link) = self.links.get_mut(&to) {
            link.conn = None;
            for f in leftover.into_iter().rev() {
                if !link.queue.push_front(f) {
                    shed += 1;
                }
            }
            link.state = OutState::Degraded;
            let held = link.hold.is_some();
            link.grace_deadline = if held { None } else { Some(now + grace) };
            link.next_attempt = if held { None } else { Some(now) };
            link.attempt = 0;
            link.attempt_deadline = None;
        }
        if shed > 0 {
            self.stats.on_shed(shed);
        }
        self.stats.on_degraded();
    }

    /// Grace or attempt budget exhausted: the link drops to Down, its
    /// backlog is shed, and only a fault-injection heal revives it.
    fn link_to_down(&mut self, cx: &mut Cx<'_>, to: ServerId, grace_expired: bool) {
        if let Some(tok) = self.links.get(&to).and_then(|l| l.conn) {
            self.close_conn(cx, tok);
        }
        let mut backlog = 0u64;
        if let Some(link) = self.links.get_mut(&to) {
            link.conn = None;
            while link.queue.pop().is_some() {
                backlog += 1;
            }
            link.state = OutState::Down;
            link.grace_deadline = None;
            link.next_attempt = None;
            link.attempt_deadline = None;
        }
        self.dirty.retain(|&d| d != to);
        if grace_expired {
            self.stats.on_grace_expired();
        }
        if backlog > 0 {
            self.stats.on_shed(backlog);
        }
    }

    /// Fault injection: hold the link to `to` down. Flushes what the
    /// socket will take first so already-queued bytes ride out with the
    /// FIN — an under-grace hold is lossless end to end.
    fn fault_hold(&mut self, cx: &mut Cx<'_>, to: ServerId, hold: Hold) {
        let Some(state) = self.links.get(&to).map(|l| l.state) else { return };
        let (high, low) = (self.link_queue_high, self.link_queue_low);
        match state {
            OutState::Connected => {
                if let Some(tok) = self.links.get(&to).and_then(|l| l.conn) {
                    let mut leftover = Vec::new();
                    if let Some(conn) = self.conns.get_mut(&tok) {
                        if let ConnKind::Out { wb, .. } = &mut conn.kind {
                            let _ = wb.flush(&mut conn.stream); // best-effort
                            leftover = wb.take_frames();
                        }
                    }
                    self.close_conn(cx, tok);
                    let mut shed = 0u64;
                    if let Some(link) = self.links.get_mut(&to) {
                        link.conn = None;
                        for f in leftover.into_iter().rev() {
                            if !link.queue.push_front(f) {
                                shed += 1;
                            }
                        }
                    }
                    if shed > 0 {
                        self.stats.on_shed(shed);
                    }
                }
                if let Some(link) = self.links.get_mut(&to) {
                    link.state = OutState::Degraded;
                }
                self.stats.on_degraded();
            }
            OutState::Down => {
                if let Some(link) = self.links.get_mut(&to) {
                    link.state = OutState::Degraded;
                    link.queue = FrameQueue::new(high, low);
                }
                self.stats.on_degraded();
            }
            OutState::Connecting => {
                // Cancel the in-flight attempt; the queue keeps
                // buffering while held.
                if let Some(tok) = self.links.get(&to).and_then(|l| l.conn) {
                    self.close_conn(cx, tok);
                }
                if let Some(link) = self.links.get_mut(&to) {
                    link.conn = None;
                    link.state = OutState::Degraded;
                }
                self.stats.on_degraded();
            }
            OutState::Degraded => {
                // Keep the buffered tail; cancel any in-flight attempt.
                if let Some(tok) = self.links.get(&to).and_then(|l| l.conn) {
                    self.close_conn(cx, tok);
                }
                if let Some(link) = self.links.get_mut(&to) {
                    link.conn = None;
                }
            }
        }
        if let Some(link) = self.links.get_mut(&to) {
            link.hold = Some(hold);
            // Held links heal, they do not expire or reconnect.
            link.grace_deadline = None;
            link.next_attempt = None;
            link.attempt_deadline = None;
        }
        self.dirty.retain(|&d| d != to);
    }

    /// Heal a fault-held link: resume the grace clock and reconnect.
    fn heal_link(&mut self, cx: &mut Cx<'_>, to: ServerId) {
        let now = cx.now;
        let grace = self.link_grace;
        let (high, low) = (self.link_queue_high, self.link_queue_low);
        let mut degraded_stat = false;
        if let Some(link) = self.links.get_mut(&to) {
            if link.hold.is_none() {
                return;
            }
            link.hold = None;
            match link.state {
                OutState::Degraded => {
                    link.grace_deadline = Some(now + grace);
                    link.next_attempt = Some(now);
                    link.attempt = 0;
                }
                OutState::Down => {
                    link.state = OutState::Degraded;
                    link.queue = FrameQueue::new(high, low);
                    link.grace_deadline = Some(now + grace);
                    link.next_attempt = Some(now);
                    link.attempt = 0;
                    degraded_stat = true;
                }
                OutState::Connecting => {
                    link.next_attempt = Some(now);
                }
                OutState::Connected => {}
            }
        }
        if degraded_stat {
            self.stats.on_degraded();
        }
        let _ = cx;
    }

    /// Attempt to drain one Connected link's `WriteBuf` (one vectored
    /// write per call, more only if the socket keeps accepting). Write
    /// interest stays armed exactly while bytes remain buffered.
    fn flush_link(&mut self, cx: &mut Cx<'_>, to: ServerId) {
        let tok = match self.links.get(&to) {
            Some(l) if l.state == OutState::Connected => match l.conn {
                Some(t) => t,
                None => return,
            },
            _ => return,
        };
        let mut failed = false;
        let mut drained = false;
        if let Some(conn) = self.conns.get_mut(&tok) {
            if let ConnKind::Out { wb, .. } = &mut conn.kind {
                match wb.flush(&mut conn.stream) {
                    Ok(true) => drained = true,
                    Ok(false) => {} // socket full: wait for writability
                    Err(_) => failed = true,
                }
            }
        }
        if failed {
            self.degrade(cx, to);
            return;
        }
        let want =
            if drained { Interest::READABLE } else { Interest::READABLE | Interest::WRITABLE };
        self.set_interest(cx, tok, want);
    }

    /// Flush every link that buffered frames since the last batch.
    fn flush_dirty(&mut self, cx: &mut Cx<'_>) {
        let dirty = std::mem::take(&mut self.dirty);
        for to in dirty {
            self.flush_link(cx, to);
        }
    }

    fn set_interest(&mut self, cx: &mut Cx<'_>, tok: usize, want: Interest) {
        if let Some(conn) = self.conns.get_mut(&tok) {
            if conn.interest != want && cx.poll.reregister(&conn.stream, Token(tok), want).is_ok() {
                conn.interest = want;
            }
        }
    }

    /// Deregister + drop one connection. Returns it so callers can
    /// recover buffered frames before the socket closes.
    fn close_conn(&mut self, cx: &mut Cx<'_>, tok: usize) -> Option<Conn> {
        cx.sources.remove(&tok);
        let conn = self.conns.remove(&tok)?;
        let _ = cx.poll.deregister(&conn.stream);
        Some(conn)
    }

    // --- timers ---------------------------------------------------------

    /// Earliest pending deadline across all timed state: heartbeats,
    /// FD sweeps, the app-grace gate, link graces and reconnect timers,
    /// reader graces, flap auto-heals, and the accept-backoff resume.
    fn next_deadline(&self) -> Option<Instant> {
        let mut next: Option<Instant> = None;
        let mut fold = |d: Instant| {
            next = Some(match next {
                Some(n) if n <= d => n,
                _ => d,
            });
        };
        fold(self.next_hb_send);
        fold(self.next_fd_check);
        if let Some(d) = self.gate_deadline {
            fold(d);
        }
        if let Some(d) = self.accept_resume {
            fold(d);
        }
        for link in self.links.values() {
            if let Some(d) = link.grace_deadline {
                fold(d);
            }
            if let Some(d) = link.next_attempt {
                fold(d);
            }
            if let Some(d) = link.attempt_deadline {
                fold(d);
            }
            if let Some(Hold::Until(t)) = link.hold {
                fold(t);
            }
        }
        for &d in self.reader_grace.values() {
            fold(d);
        }
        next
    }

    /// Fire every deadline that has passed.
    fn on_tick(&mut self, cx: &mut Cx<'_>) {
        if self.dead {
            return;
        }
        let now = cx.now;
        // Flap auto-heals first: a heal and an expiry racing the same
        // tick resolve in the link's favour.
        let heals: Vec<ServerId> = self
            .links
            .iter()
            .filter(|(_, l)| matches!(l.hold, Some(Hold::Until(t)) if t <= now))
            .map(|(&k, _)| k)
            .collect();
        for to in heals {
            self.heal_link(cx, to);
        }
        // Degraded links whose grace ran out drop to Down.
        let expired: Vec<ServerId> = self
            .links
            .iter()
            .filter(|(_, l)| l.grace_deadline.is_some_and(|d| d <= now))
            .map(|(&k, _)| k)
            .collect();
        for to in expired {
            self.link_to_down(cx, to, true);
        }
        // Reader graces that ran out escalate to the ◇P suspicion path.
        let suspects: Vec<ServerId> =
            self.reader_grace.iter().filter(|(_, &d)| d <= now).map(|(&k, _)| k).collect();
        for from in suspects {
            self.reader_grace.remove(&from);
            if self.suspect_on_disconnect {
                self.stats.on_suspicion();
                self.process(Event::Suspect { suspect: from });
                if self.dead {
                    return;
                }
            }
        }
        // App-grace gate expiry.
        if self.gate_deadline.is_some_and(|d| d <= now) {
            self.gate_deadline = None;
            self.release_deferred(true);
            if self.dead {
                return;
            }
        }
        // Connect attempts that timed out.
        let timed_out: Vec<ServerId> = self
            .links
            .iter()
            .filter(|(_, l)| l.attempt_deadline.is_some_and(|d| d <= now))
            .map(|(&k, _)| k)
            .collect();
        for to in timed_out {
            if let Some(tok) = self.links.get(&to).and_then(|l| l.conn) {
                self.close_conn(cx, tok);
            }
            if let Some(link) = self.links.get_mut(&to) {
                link.conn = None;
                link.attempt_deadline = None;
            }
            self.schedule_retry(cx, to);
        }
        // Due connect attempts.
        let due: Vec<ServerId> = self
            .links
            .iter()
            .filter(|(_, l)| l.next_attempt.is_some_and(|d| d <= now))
            .map(|(&k, _)| k)
            .collect();
        for to in due {
            self.start_connect(cx, to);
        }
        // Accept backoff elapsed: re-arm the listener.
        if self.listener_muted && self.accept_resume.is_some_and(|t| t <= now) {
            self.accept_resume = None;
            let tok = self.listener_token;
            if cx.poll.register(&self.listener, Token(tok), Interest::READABLE).is_ok() {
                cx.sources.insert(tok, Source::Listener { node: self.key });
                self.listener_muted = false;
                // accept_failures resets on the next successful accept,
                // so repeated failures keep growing the backoff.
            } else {
                self.stats.on_accept_failure();
                self.accept_failures = self.accept_failures.saturating_add(1);
                self.accept_resume = Some(now + accept_retry_delay(self.accept_failures));
            }
        }
        // Heartbeat emission (Δ_hb), folded into the loop.
        if self.next_hb_send <= now {
            for addr in &self.succ_udp {
                // Best-effort: heartbeats are unreliable by design.
                let _ = self.udp.send_to(&self.hb_frame, addr);
            }
            self.next_hb_send = now + self.hb_period;
        }
        // FD expiry sweep (Δ_hb/2), using the adaptive ◇P timeout.
        if self.next_fd_check <= now {
            self.next_fd_check = now + self.fd_poll;
            for s in self.hb_table.expired(self.adaptive.current()) {
                self.process(Event::Suspect { suspect: s });
                if self.dead {
                    return;
                }
            }
        }
    }

    /// Deregister and close everything this node owns. Sockets close
    /// when the state drops — peers observe disconnects, exactly like a
    /// crash.
    fn teardown(&mut self, cx: &mut Cx<'_>) {
        let toks: Vec<usize> = self.conns.keys().copied().collect();
        for tok in toks {
            self.close_conn(cx, tok);
        }
        if !self.listener_muted {
            let _ = cx.poll.deregister(&self.listener);
        }
        cx.sources.remove(&self.listener_token);
        let _ = cx.poll.deregister(&self.udp);
        cx.sources.remove(&self.udp_token);
    }
}
