//! UDP heartbeats and the timeout failure detector (§3.2).
//!
//! "The failure detector is implemented over unreliable datagrams" (§5).
//! Every server sends a heartbeat datagram to each overlay successor with
//! period `Δ_hb`; a monitor thread tracks the last heartbeat heard from
//! each overlay predecessor and raises a suspicion after `Δ_to` of
//! silence — completeness by construction, accuracy probabilistic
//! (the model in [`allconcur_core::fd`]).

use allconcur_core::ServerId;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Heartbeat datagram: magic + sender id.
const MAGIC: [u8; 4] = *b"ACHB";

/// Wire size of one heartbeat datagram.
pub const HEARTBEAT_LEN: usize = 8;

/// Encode the heartbeat datagram `id` sends to its successors.
///
/// The thread-based sender below and the event-loop runtime (which folds
/// heartbeat emission into its timer wheel) share this one encoding.
pub fn encode_heartbeat(id: ServerId) -> [u8; HEARTBEAT_LEN] {
    let mut buf = [0u8; HEARTBEAT_LEN];
    buf[..4].copy_from_slice(&MAGIC);
    buf[4..].copy_from_slice(&id.to_le_bytes());
    buf
}

/// Decode a received datagram; `None` for anything malformed (wrong
/// length or magic), which callers drop silently — heartbeats are
/// unreliable by design.
pub fn decode_heartbeat(buf: &[u8]) -> Option<ServerId> {
    if buf.len() != HEARTBEAT_LEN || buf[..4] != MAGIC {
        return None;
    }
    Some(ServerId::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]))
}

/// Failure-detector timing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FdParams {
    /// Heartbeat period `Δ_hb`.
    pub heartbeat_period: Duration,
    /// Suspicion timeout `Δ_to`.
    pub timeout: Duration,
}

impl FdParams {
    /// The paper's Fig. 7 setting: `Δ_hb = 10 ms`, `Δ_to = 100 ms`.
    pub fn paper_default() -> Self {
        FdParams {
            heartbeat_period: Duration::from_millis(10),
            timeout: Duration::from_millis(100),
        }
    }

    /// A profile for loopback tests. The timeout is deliberately lax:
    /// on shared CI machines, scheduler hiccups of tens of milliseconds
    /// are routine and a tight `Δ_to` produces spurious suspicions of
    /// live servers. Loopback crash detection does not pay for the lax
    /// timeout because a dead peer's closed socket triggers the
    /// disconnect-based suspicion path after one `link_grace` (well
    /// under this `Δ_to` — see `RuntimeOptions::link_grace`).
    pub fn fast() -> Self {
        FdParams {
            heartbeat_period: Duration::from_millis(10),
            timeout: Duration::from_millis(1500),
        }
    }
}

/// Shared last-heard table, written by the receive thread and read by the
/// monitor thread.
#[derive(Debug, Default)]
pub struct HeartbeatTable {
    last_heard: Mutex<HashMap<ServerId, Instant>>,
}

impl HeartbeatTable {
    /// Fresh table; predecessors are considered "heard" at registration so
    /// startup does not generate spurious suspicions.
    pub fn new(predecessors: &[ServerId]) -> Arc<Self> {
        let now = Instant::now();
        let table = HeartbeatTable {
            last_heard: Mutex::new(predecessors.iter().map(|&p| (p, now)).collect()),
        };
        Arc::new(table)
    }

    /// Record a heartbeat from `from`.
    pub fn record(&self, from: ServerId) {
        if let Some(slot) = self.last_heard.lock().get_mut(&from) {
            *slot = Instant::now();
        }
    }

    /// Predecessors silent for longer than `timeout`. Each is reported
    /// once: expired entries are removed so the monitor does not re-fire.
    pub fn expired(&self, timeout: Duration) -> Vec<ServerId> {
        let mut guard = self.last_heard.lock();
        let now = Instant::now();
        let dead: Vec<ServerId> = guard
            .iter()
            .filter(|(_, &t)| now.duration_since(t) > timeout)
            .map(|(&p, _)| p)
            .collect();
        for p in &dead {
            guard.remove(p);
        }
        dead
    }

    /// Stop monitoring `p` (it was tagged failed by the protocol).
    pub fn forget(&self, p: ServerId) {
        self.last_heard.lock().remove(&p);
    }
}

/// Heartbeat sender: periodically fires one datagram per successor until
/// stopped. Returns the join handle, or the spawn error (thread
/// exhaustion) for the caller to surface as a startup failure.
pub fn spawn_sender(
    socket: UdpSocket,
    id: ServerId,
    successors: Vec<SocketAddr>,
    params: FdParams,
    stop: Arc<AtomicBool>,
) -> std::io::Result<std::thread::JoinHandle<()>> {
    std::thread::Builder::new().name(format!("ac-hb-send-{id}")).spawn(move || {
        let buf = encode_heartbeat(id);
        while !stop.load(Ordering::Relaxed) {
            for addr in &successors {
                // Best-effort: heartbeats are unreliable by design.
                let _ = socket.send_to(&buf, addr);
            }
            std::thread::sleep(params.heartbeat_period);
        }
    })
}

/// Heartbeat receiver: records arrivals into the table until stopped.
pub fn spawn_receiver(
    socket: UdpSocket,
    id: ServerId,
    table: Arc<HeartbeatTable>,
    stop: Arc<AtomicBool>,
) -> std::io::Result<std::thread::JoinHandle<()>> {
    socket.set_read_timeout(Some(Duration::from_millis(20)))?;
    std::thread::Builder::new().name(format!("ac-hb-recv-{id}")).spawn(move || {
        let mut buf = [0u8; 16];
        while !stop.load(Ordering::Relaxed) {
            match socket.recv_from(&mut buf) {
                Ok((n, _)) => {
                    if let Some(from) = decode_heartbeat(&buf[..n]) {
                        table.record(from);
                    }
                    // else: malformed datagram, drop
                }
                Err(ref e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(_) => break, // socket closed
            }
        }
    })
}

/// Monitor: polls the table every `poll` and reports expirations
/// through `on_suspect` until stopped.
///
/// The suspicion timeout is read from `timeout` on every poll — the
/// runtime shares the same [`AdaptiveTimeout`] with its link-healing
/// path, so every flap that heals under grace grows `Δ_to` (the §3.3.2
/// ◇P recipe) and the monitor's next decision uses the grown value.
pub fn spawn_monitor<F>(
    id: ServerId,
    table: Arc<HeartbeatTable>,
    poll: Duration,
    timeout: Arc<AdaptiveTimeout>,
    stop: Arc<AtomicBool>,
    on_suspect: F,
) -> std::io::Result<std::thread::JoinHandle<()>>
where
    F: Fn(ServerId) + Send + 'static,
{
    std::thread::Builder::new().name(format!("ac-fd-{id}")).spawn(move || {
        while !stop.load(Ordering::Relaxed) {
            for suspect in table.expired(timeout.current()) {
                on_suspect(suspect);
            }
            std::thread::sleep(poll);
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_records_and_expires() {
        let table = HeartbeatTable::new(&[1, 2]);
        table.record(1);
        std::thread::sleep(Duration::from_millis(30));
        table.record(2);
        let dead = table.expired(Duration::from_millis(20));
        assert_eq!(dead, vec![1]);
        // Reported once only.
        assert!(table.expired(Duration::from_millis(20)).is_empty());
    }

    #[test]
    fn forget_removes_monitoring() {
        let table = HeartbeatTable::new(&[3]);
        table.forget(3);
        std::thread::sleep(Duration::from_millis(5));
        assert!(table.expired(Duration::from_millis(1)).is_empty());
    }

    #[test]
    fn unknown_sender_ignored() {
        let table = HeartbeatTable::new(&[1]);
        table.record(99); // not a predecessor: no panic, no entry
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(table.expired(Duration::from_millis(1)), vec![1]);
    }

    #[test]
    fn end_to_end_heartbeats_over_udp() {
        // Server 0 sends to server 1; killing the sender triggers the
        // monitor exactly once.
        let sock0 = UdpSocket::bind("127.0.0.1:0").unwrap();
        let sock1 = UdpSocket::bind("127.0.0.1:0").unwrap();
        let addr1 = sock1.local_addr().unwrap();
        let params = FdParams {
            heartbeat_period: Duration::from_millis(5),
            timeout: Duration::from_millis(50),
        };

        let stop_send = Arc::new(AtomicBool::new(false));
        let sender = spawn_sender(sock0, 0, vec![addr1], params, stop_send.clone()).unwrap();

        let table = HeartbeatTable::new(&[0]);
        let stop_recv = Arc::new(AtomicBool::new(false));
        let receiver = spawn_receiver(sock1, 1, table.clone(), stop_recv.clone()).unwrap();

        let suspected = Arc::new(Mutex::new(Vec::new()));
        let suspected2 = suspected.clone();
        let stop_mon = Arc::new(AtomicBool::new(false));
        let adaptive = Arc::new(AdaptiveTimeout::new(params.timeout, params.timeout));
        let monitor = spawn_monitor(
            1,
            table,
            params.heartbeat_period / 2,
            adaptive,
            stop_mon.clone(),
            move |s| {
                suspected2.lock().push(s);
            },
        )
        .unwrap();

        // Healthy phase: no suspicion.
        std::thread::sleep(Duration::from_millis(120));
        assert!(suspected.lock().is_empty(), "live sender must not be suspected");

        // Kill the sender; suspicion within ~Δ_to + slack.
        stop_send.store(true, Ordering::Relaxed);
        sender.join().unwrap();
        std::thread::sleep(Duration::from_millis(200));
        assert_eq!(suspected.lock().as_slice(), &[0], "dead sender must be suspected once");

        stop_recv.store(true, Ordering::Relaxed);
        stop_mon.store(true, Ordering::Relaxed);
        receiver.join().unwrap();
        monitor.join().unwrap();
    }
}

/// Adaptive timeout — the §3.3.2 recipe for an eventually-perfect FD:
/// "When a server falsely suspects another server to have failed, it
/// increments the timeout period `Δ_to`; thus, eventually, non-faulty
/// servers are no longer suspected."
///
/// The runtime reports evidence of a false suspicion (a message arriving
/// from a server we suspected) via [`AdaptiveTimeout::report_false_suspicion`];
/// each report grows the timeout multiplicatively up to a cap.
#[derive(Debug)]
pub struct AdaptiveTimeout {
    current: Mutex<Duration>,
    growth_num: u32,
    growth_den: u32,
    max: Duration,
}

impl AdaptiveTimeout {
    /// Start at `initial`, growing by 3/2 per false suspicion, capped at
    /// `max`.
    pub fn new(initial: Duration, max: Duration) -> Self {
        assert!(initial <= max, "initial timeout above cap");
        AdaptiveTimeout { current: Mutex::new(initial), growth_num: 3, growth_den: 2, max }
    }

    /// The timeout to use for the next suspicion decision.
    pub fn current(&self) -> Duration {
        *self.current.lock()
    }

    /// Evidence of a false suspicion: grow the timeout. Returns the new
    /// value.
    pub fn report_false_suspicion(&self) -> Duration {
        let mut cur = self.current.lock();
        let grown =
            cur.checked_mul(self.growth_num).map(|d| d / self.growth_den).unwrap_or(self.max);
        *cur = grown.min(self.max);
        *cur
    }
}

#[cfg(test)]
mod adaptive_tests {
    use super::*;

    #[test]
    fn grows_multiplicatively_to_cap() {
        let at = AdaptiveTimeout::new(Duration::from_millis(100), Duration::from_secs(2));
        assert_eq!(at.current(), Duration::from_millis(100));
        assert_eq!(at.report_false_suspicion(), Duration::from_millis(150));
        assert_eq!(at.report_false_suspicion(), Duration::from_millis(225));
        for _ in 0..20 {
            at.report_false_suspicion();
        }
        assert_eq!(at.current(), Duration::from_secs(2), "capped");
    }

    #[test]
    #[should_panic(expected = "initial timeout above cap")]
    fn rejects_inverted_bounds() {
        AdaptiveTimeout::new(Duration::from_secs(5), Duration::from_secs(1));
    }

    #[test]
    fn eventually_exceeds_any_bounded_delay() {
        // The ◇P property: for any (unknown) true message-delay bound,
        // enough false suspicions push Δ_to above it permanently.
        let at = AdaptiveTimeout::new(Duration::from_millis(10), Duration::from_secs(3600));
        let true_delay_bound = Duration::from_millis(750);
        let mut reports = 0;
        while at.current() <= true_delay_bound {
            at.report_false_suspicion();
            reports += 1;
            assert!(reports < 100, "must converge quickly");
        }
        assert!(at.current() > true_delay_bound);
    }
}
