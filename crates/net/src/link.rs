//! Per-link transport resilience primitives.
//!
//! AllConcur's failure model (§3, §4.2.2) distinguishes *process*
//! failures — the ◇P detector's job — from *transient link* faults,
//! which should be healed below the protocol so they never surface as
//! suspicions. This module holds the pieces the TCP runtime composes
//! into its per-link state machine (Connected → Degraded → Down):
//!
//! * [`BackoffPolicy`] — capped exponential backoff with deterministic
//!   seeded jitter, shared by initial connects and reconnects;
//! * [`ConnectError`] — typed connect failure carrying the attempt
//!   count;
//! * [`FrameQueue`] — the bounded per-link outbound buffer with
//!   high/low watermark hysteresis that keeps Degraded memory-safe;
//! * [`WriteBuf`] — the Connected-side outbound buffer of the event
//!   loop: refcounted frames coalesced into one vectored write
//!   (`writev`) per ready link, resumable at any byte offset after a
//!   partial write or `EAGAIN`;
//! * [`LinkStats`] — atomic counters read by tests, the nemesis
//!   harness, and CI failure dumps.
//!
//! See `DESIGN.md` § "Transport resilience & admission control" for the
//! state-machine diagram and parameter rationale.

use bytes::Bytes;
use std::collections::VecDeque;
use std::fmt;
use std::io::{self, IoSlice, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// xorshift64* step — the same tiny generator the runtime's drop
/// sampler uses, so resilience code adds no dependency on `rand`.
fn xorshift_star(mut x: u64) -> u64 {
    if x == 0 {
        x = 0x9e37_79b9_7f4a_7c15;
    }
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

/// Capped exponential backoff with deterministic seeded jitter.
///
/// Attempt `k` (0-based) waits `min(base · 2ᵏ, cap)` plus a jitter in
/// `[0, delay/2]` drawn from an xorshift64* stream keyed by
/// `(seed, k)`. The jitter is a pure function of the seed and attempt
/// number — scripted tests replay byte-for-byte — yet seeds differ per
/// link, so a cluster-wide outage does not produce synchronized
/// reconnect stampedes.
#[derive(Debug, Clone, Copy)]
pub struct BackoffPolicy {
    /// First-attempt delay (the exponential base).
    pub base: Duration,
    /// Upper bound on the exponential component; with jitter the total
    /// delay never exceeds `1.5 × cap`.
    pub cap: Duration,
    /// Jitter stream seed. Key it per link (e.g. `id ⊕ peer`) so links
    /// de-phase.
    pub seed: u64,
}

impl BackoffPolicy {
    /// Policy with the given base/cap and jitter seed.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> BackoffPolicy {
        BackoffPolicy { base, cap, seed }
    }

    /// Delay before retry attempt `attempt` (0-based).
    pub fn delay(&self, attempt: u32) -> Duration {
        let mult = 1u64 << attempt.min(16);
        let base = u64::try_from(self.base.as_nanos()).unwrap_or(u64::MAX);
        let cap = u64::try_from(self.cap.as_nanos()).unwrap_or(u64::MAX);
        let exp = base.saturating_mul(mult).min(cap);
        let jitter = xorshift_star(self.seed ^ u64::from(attempt).wrapping_add(1)) % (exp / 2 + 1);
        Duration::from_nanos(exp.saturating_add(jitter))
    }
}

/// Typed connect failure: how many attempts were made and the last
/// underlying I/O error. Convertible back to [`std::io::Error`] (same
/// kind, this as the source) for callers that only speak `io::Result`.
#[derive(Debug)]
pub struct ConnectError {
    /// Number of connection attempts made before giving up.
    pub attempts: u32,
    /// The error from the final attempt.
    pub last: std::io::Error,
}

impl fmt::Display for ConnectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "connect failed after {} attempts: {}", self.attempts, self.last)
    }
}

impl std::error::Error for ConnectError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.last)
    }
}

impl From<ConnectError> for std::io::Error {
    fn from(e: ConnectError) -> std::io::Error {
        std::io::Error::new(e.last.kind(), e)
    }
}

/// Connect to `addr`, retrying under `policy` for up to `attempts`
/// attempts (clamped to ≥ 1). Used both for the runtime's initial
/// successor connections and — via the same policy — its Degraded-link
/// reconnects, so the two paths share one backoff behaviour.
///
/// On exhaustion returns a [`ConnectError`] carrying the attempt count
/// and the last underlying error.
pub fn connect_with_retry(
    addr: std::net::SocketAddr,
    attempts: u32,
    policy: &BackoffPolicy,
) -> Result<std::net::TcpStream, ConnectError> {
    let attempts = attempts.max(1);
    let mut last: Option<std::io::Error> = None;
    for k in 0..attempts {
        match std::net::TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => last = Some(e),
        }
        if k + 1 < attempts {
            std::thread::sleep(policy.delay(k));
        }
    }
    Err(ConnectError {
        attempts,
        last: last.unwrap_or_else(|| std::io::Error::other("connect made no attempts")),
    })
}

/// Bounded per-link outbound frame buffer with high/low watermark
/// hysteresis.
///
/// While a link is Degraded, outbound frames queue here for replay on
/// reconnect. Crossing the *high* watermark enters saturation: new
/// frames are shed (counted, never stored) until the queue drains below
/// the *low* watermark — hysteresis, so a queue hovering at the
/// boundary does not flap between accepting and shedding. Shedding a
/// protocol frame is equivalent to a transient message-loss fault,
/// which the overlay's vertex-connectivity already tolerates; the point
/// is that Degraded links hold **bounded** memory no matter how long
/// the outage lasts.
#[derive(Debug)]
pub struct FrameQueue {
    frames: VecDeque<Bytes>,
    high: usize,
    low: usize,
    saturated: bool,
    shed: u64,
    /// Put-back bytes accepted since the queue last drained empty (one
    /// replay episode); see [`FrameQueue::push_front`].
    putback_spent: usize,
    /// Byte budget for put-backs per episode.
    putback_budget: usize,
}

/// Default per-episode byte budget for [`FrameQueue::push_front`]: a
/// full high watermark of [`allconcur_core::wire::MAX_FRAME`]-adjacent
/// frames never comes near it, while a link flapping every few
/// milliseconds re-spends the budget instead of growing the queue past
/// the high watermark without bound.
pub const PUTBACK_BUDGET_BYTES: usize = 8 * 1024 * 1024;

/// How many frames above the high watermark a put-back may occupy: a
/// dying connection returns at most the frames the watermark admitted
/// plus whatever was in flight, so a small fixed slack suffices.
const PUTBACK_SLACK_FRAMES: usize = 32;

impl FrameQueue {
    /// Queue with the given watermarks. `high` is clamped to ≥ 1 and
    /// `low` to below `high`, so the hysteresis band always exists.
    pub fn new(high: usize, low: usize) -> FrameQueue {
        FrameQueue::with_putback_budget(high, low, PUTBACK_BUDGET_BYTES)
    }

    /// [`FrameQueue::new`] with an explicit put-back byte budget (tests
    /// exercise the bound without allocating megabytes).
    pub fn with_putback_budget(high: usize, low: usize, putback_budget: usize) -> FrameQueue {
        let high = high.max(1);
        FrameQueue {
            frames: VecDeque::new(),
            high,
            low: low.min(high - 1),
            saturated: false,
            shed: 0,
            putback_spent: 0,
            putback_budget,
        }
    }

    /// Enqueue a frame for replay. Returns `false` (and counts a shed)
    /// when the queue is saturated.
    pub fn push(&mut self, frame: Bytes) -> bool {
        if self.saturated || self.frames.len() >= self.high {
            self.saturated = true;
            self.shed += 1;
            return false;
        }
        self.frames.push_back(frame);
        true
    }

    /// Return a frame to the front of the queue — the replay path puts
    /// back what a dying reconnect failed to write, preserving FIFO
    /// order ahead of frames queued since.
    ///
    /// Put-backs ride *above* the high watermark (the frames were
    /// already admitted once), but not unboundedly: occupancy may
    /// exceed `high` by at most a small fixed slack, and each
    /// drain-to-empty episode accepts at most a fixed byte budget of
    /// put-backs. A link flapping faster than it replays therefore
    /// sheds (returns `false`, counted) instead of growing the Degraded
    /// buffer without bound; shedding is equivalent to the transient
    /// message loss the overlay's redundant paths already tolerate.
    #[must_use = "a false return means the frame was shed, not requeued"]
    pub fn push_front(&mut self, frame: Bytes) -> bool {
        if self.frames.len() >= self.high + PUTBACK_SLACK_FRAMES
            || self.putback_spent.saturating_add(frame.len()) > self.putback_budget
        {
            self.shed += 1;
            return false;
        }
        self.putback_spent += frame.len();
        self.frames.push_front(frame);
        true
    }

    /// Dequeue the oldest frame. Dropping below the low watermark exits
    /// saturation; draining empty refunds the put-back budget (the
    /// episode's replay completed).
    pub fn pop(&mut self) -> Option<Bytes> {
        let f = self.frames.pop_front();
        if self.saturated && self.frames.len() <= self.low {
            self.saturated = false;
        }
        if self.frames.is_empty() {
            self.putback_spent = 0;
        }
        f
    }

    /// Frames currently buffered.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the queue holds no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Whether the queue is shedding (above high, not yet drained below
    /// low).
    pub fn is_saturated(&self) -> bool {
        self.saturated
    }

    /// Frames shed since creation.
    pub fn shed(&self) -> u64 {
        self.shed
    }
}

/// Maximum buffers handed to one vectored write. Linux caps `writev`
/// at `IOV_MAX` (1024); far fewer already amortises the syscall.
const MAX_IOVECS: usize = 64;

/// Outbound buffer of a *Connected* link under the non-blocking event
/// loop: frames pushed during a reactor iteration coalesce into one
/// vectored write (`writev` via [`Write::write_vectored`]) when the
/// link is flushed, instead of one syscall per frame per successor.
///
/// The buffer is resumable at any byte offset: a partial write or
/// `EAGAIN` mid-frame keeps the unwritten tail (including the
/// partially-written head frame's remainder) for the next readiness
/// event. On a write *error* the link degrades and
/// [`WriteBuf::take_frames`] returns the unwritten frames — the head
/// frame whole, from byte 0, because the peer discards the partial
/// tail along with the dead socket — for put-back into the Degraded
/// [`FrameQueue`].
#[derive(Debug, Default)]
pub struct WriteBuf {
    frames: VecDeque<Bytes>,
    /// Bytes of the head frame already written to the socket.
    head_off: usize,
    /// Total unwritten bytes across all frames.
    bytes: usize,
}

impl WriteBuf {
    /// Empty buffer.
    pub fn new() -> WriteBuf {
        WriteBuf::default()
    }

    /// Queue one encoded frame for the next flush.
    pub fn push(&mut self, frame: Bytes) {
        if frame.is_empty() {
            return;
        }
        self.bytes += frame.len();
        self.frames.push_back(frame);
    }

    /// Whether everything queued has been written.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Unwritten bytes currently buffered.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Frames with at least one unwritten byte.
    pub fn frames(&self) -> usize {
        self.frames.len()
    }

    /// Write as much as the socket accepts, in as few vectored writes
    /// as possible. `Ok(true)` when the buffer drained, `Ok(false)`
    /// when the socket would block (re-arm write interest and retry on
    /// the next readiness event), `Err` on a real transport error
    /// (degrade the link; the unwritten frames are still buffered for
    /// [`WriteBuf::take_frames`]).
    pub fn flush<W: Write>(&mut self, w: &mut W) -> io::Result<bool> {
        while !self.frames.is_empty() {
            let mut slices: Vec<IoSlice<'_>> =
                Vec::with_capacity(self.frames.len().min(MAX_IOVECS));
            for (i, f) in self.frames.iter().take(MAX_IOVECS).enumerate() {
                let start = if i == 0 { self.head_off } else { 0 };
                // head_off < head.len() is an invariant of consume();
                // a frame is popped the moment it completes.
                slices.push(IoSlice::new(&f[start.min(f.len())..]));
            }
            match w.write_vectored(&slices) {
                Ok(0) => return Err(io::Error::new(io::ErrorKind::WriteZero, "socket wrote 0")),
                Ok(n) => self.consume(n),
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }

    /// Advance past `n` written bytes.
    fn consume(&mut self, mut n: usize) {
        self.bytes = self.bytes.saturating_sub(n);
        while n > 0 {
            let Some(head) = self.frames.front() else {
                self.head_off = 0;
                return;
            };
            let left = head.len() - self.head_off.min(head.len());
            if n < left {
                self.head_off += n;
                return;
            }
            n -= left;
            self.head_off = 0;
            self.frames.pop_front();
        }
    }

    /// Drain the unwritten frames for put-back after a write error. The
    /// head frame is returned whole (its already-written prefix replays
    /// from byte 0 on the fresh connection — the peer discarded the
    /// partial tail with the dead socket).
    pub fn take_frames(&mut self) -> Vec<Bytes> {
        self.head_off = 0;
        self.bytes = 0;
        self.frames.drain(..).collect()
    }
}

/// Atomic resilience counters for one runtime, shared between the
/// protocol thread (writes) and observers (tests, nemesis reports, CI
/// failure dumps).
#[derive(Debug, Default)]
pub struct LinkStats {
    degraded: AtomicU64,
    reconnects: AtomicU64,
    replayed_frames: AtomicU64,
    grace_expired: AtomicU64,
    shed_frames: AtomicU64,
    reader_disconnects: AtomicU64,
    healed: AtomicU64,
    suspicions: AtomicU64,
    corrupt_frames: AtomicU64,
    accept_failures: AtomicU64,
}

impl LinkStats {
    /// A writer link entered Degraded.
    pub fn on_degraded(&self) {
        self.degraded.fetch_add(1, Ordering::Relaxed);
    }

    /// A Degraded writer link reconnected.
    pub fn on_reconnect(&self) {
        self.reconnects.fetch_add(1, Ordering::Relaxed);
    }

    /// `n` buffered frames were replayed after a reconnect.
    pub fn on_replayed(&self, n: u64) {
        self.replayed_frames.fetch_add(n, Ordering::Relaxed);
    }

    /// A Degraded link exhausted its grace budget (→ Down).
    pub fn on_grace_expired(&self) {
        self.grace_expired.fetch_add(1, Ordering::Relaxed);
    }

    /// `n` outbound frames were shed by watermark saturation or a Down
    /// link.
    pub fn on_shed(&self, n: u64) {
        self.shed_frames.fetch_add(n, Ordering::Relaxed);
    }

    /// An inbound (reader) connection dropped.
    pub fn on_reader_disconnect(&self) {
        self.reader_disconnects.fetch_add(1, Ordering::Relaxed);
    }

    /// A predecessor reconnected while its disconnect grace was still
    /// pending — the flap healed without a suspicion.
    pub fn on_healed(&self) {
        self.healed.fetch_add(1, Ordering::Relaxed);
    }

    /// A disconnect grace expired and escalated to a suspicion.
    pub fn on_suspicion(&self) {
        self.suspicions.fetch_add(1, Ordering::Relaxed);
    }

    /// An inbound frame failed its CRC (or decode) check. The
    /// connection is dropped and healed like any other link fault; the
    /// corrupted payload is never delivered.
    pub fn on_corrupt_frame(&self) {
        self.corrupt_frames.fetch_add(1, Ordering::Relaxed);
    }

    /// The listener's `accept` failed with a real error (fd exhaustion,
    /// ENOBUFS, …). The runtime mutes the accept source under a capped
    /// backoff instead of spinning; this counter is how a degraded —
    /// rather than failed — node surfaces in tests and CI dumps.
    pub fn on_accept_failure(&self) {
        self.accept_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Consistent-enough point-in-time copy (individual counters are
    /// each read atomically).
    pub fn snapshot(&self) -> LinkStatsSnapshot {
        LinkStatsSnapshot {
            degraded: self.degraded.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            replayed_frames: self.replayed_frames.load(Ordering::Relaxed),
            grace_expired: self.grace_expired.load(Ordering::Relaxed),
            shed_frames: self.shed_frames.load(Ordering::Relaxed),
            reader_disconnects: self.reader_disconnects.load(Ordering::Relaxed),
            healed: self.healed.load(Ordering::Relaxed),
            suspicions: self.suspicions.load(Ordering::Relaxed),
            corrupt_frames: self.corrupt_frames.load(Ordering::Relaxed),
            accept_failures: self.accept_failures.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value copy of [`LinkStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStatsSnapshot {
    /// Times any writer link entered Degraded.
    pub degraded: u64,
    /// Successful writer reconnections.
    pub reconnects: u64,
    /// Frames replayed from Degraded queues after reconnects.
    pub replayed_frames: u64,
    /// Writer links whose grace budget expired (→ Down).
    pub grace_expired: u64,
    /// Outbound frames shed (watermark saturation or Down links).
    pub shed_frames: u64,
    /// Inbound (reader) connection drops observed.
    pub reader_disconnects: u64,
    /// Disconnect graces cancelled by a predecessor reconnecting.
    pub healed: u64,
    /// Disconnect graces that expired into suspicions.
    pub suspicions: u64,
    /// Inbound frames rejected by the CRC/decode check (each dropped
    /// the connection, which then healed through reader grace).
    pub corrupt_frames: u64,
    /// Real (non-`WouldBlock`) accept errors; each mutes the listener
    /// under a capped backoff rather than spinning or killing the node.
    pub accept_failures: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_capped() {
        let p = BackoffPolicy::new(Duration::from_millis(5), Duration::from_millis(80), 42);
        let q = BackoffPolicy::new(Duration::from_millis(5), Duration::from_millis(80), 42);
        for k in 0..30 {
            assert_eq!(p.delay(k), q.delay(k), "same seed+attempt must replay");
            assert!(p.delay(k) <= Duration::from_millis(120), "cap × 1.5 bound at attempt {k}");
        }
        // Exponential growth below the cap: attempt 3's floor is 8× base.
        assert!(p.delay(3) >= Duration::from_millis(40));
        // Different seeds de-phase.
        let r = BackoffPolicy::new(Duration::from_millis(5), Duration::from_millis(80), 43);
        assert!((0..8).any(|k| r.delay(k) != p.delay(k)), "jitter must depend on the seed");
    }

    #[test]
    fn backoff_huge_attempt_does_not_overflow() {
        let p = BackoffPolicy::new(Duration::from_secs(1), Duration::from_secs(2), 7);
        assert!(p.delay(u32::MAX) <= Duration::from_secs(3));
    }

    #[test]
    fn frame_queue_watermark_hysteresis() {
        let mut q = FrameQueue::new(4, 2);
        for i in 0..4u8 {
            assert!(q.push(Bytes::from(vec![i])), "below high watermark");
        }
        // At the high watermark: saturation begins, frames shed.
        assert!(!q.push(Bytes::from_static(b"x")));
        assert!(q.is_saturated());
        assert_eq!(q.shed(), 1);
        // Draining to 3 (> low) keeps shedding — hysteresis.
        assert!(q.pop().is_some());
        assert!(q.is_saturated());
        assert!(!q.push(Bytes::from_static(b"y")));
        assert_eq!(q.shed(), 2);
        // Draining to the low watermark reopens the queue.
        assert!(q.pop().is_some());
        assert!(!q.is_saturated());
        assert!(q.push(Bytes::from_static(b"z")));
        // FIFO order preserved across the episode.
        assert_eq!(q.pop(), Some(Bytes::from(vec![2u8])));
    }

    #[test]
    fn frame_queue_degenerate_watermarks_clamped() {
        let mut q = FrameQueue::new(0, 9); // high→1, low→0
        assert!(q.push(Bytes::from_static(b"a")));
        assert!(!q.push(Bytes::from_static(b"b")));
        assert!(q.pop().is_some());
        assert!(q.push(Bytes::from_static(b"c")));
    }

    #[test]
    fn push_front_is_bounded_per_episode() {
        // Tiny byte budget: two 4-byte put-backs fit, the third sheds.
        let mut q = FrameQueue::with_putback_budget(4, 2, 8);
        assert!(q.push_front(Bytes::from_static(b"aaaa")));
        assert!(q.push_front(Bytes::from_static(b"bbbb")));
        assert!(!q.push_front(Bytes::from_static(b"cccc")), "byte budget exhausted");
        assert_eq!(q.shed(), 1);
        assert_eq!(q.len(), 2);
        // Draining the queue empty refunds the budget (episode over).
        assert!(q.pop().is_some());
        assert!(q.pop().is_some());
        assert!(q.push_front(Bytes::from_static(b"dddd")), "budget refunds on full drain");
    }

    #[test]
    fn push_front_respects_frame_slack_above_high() {
        let mut q = FrameQueue::with_putback_budget(1, 0, usize::MAX);
        // 1 (high) + 32 (slack) single-byte put-backs fit; the next sheds.
        for _ in 0..33 {
            assert!(q.push_front(Bytes::from_static(b"x")));
        }
        assert!(!q.push_front(Bytes::from_static(b"x")), "slack above high is fixed");
        assert_eq!(q.shed(), 1);
    }

    #[test]
    fn push_front_keeps_fifo_ahead_of_push() {
        let mut q = FrameQueue::new(8, 4);
        assert!(q.push(Bytes::from_static(b"new")));
        assert!(q.push_front(Bytes::from_static(b"replayed")));
        assert_eq!(q.pop(), Some(Bytes::from_static(b"replayed")));
        assert_eq!(q.pop(), Some(Bytes::from_static(b"new")));
    }

    /// A writer accepting `grant` bytes per call, then `WouldBlock`.
    struct Choppy {
        written: Vec<u8>,
        grants: Vec<usize>,
    }

    impl Write for Choppy {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            match self.grants.pop() {
                Some(0) | None => Err(io::Error::new(io::ErrorKind::WouldBlock, "full")),
                Some(g) => {
                    let k = g.min(buf.len());
                    self.written.extend_from_slice(&buf[..k]);
                    Ok(k)
                }
            }
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_buf_resumes_at_any_byte_offset() {
        let frames = [Bytes::from_static(b"hello "), Bytes::from_static(b"event loop")];
        let total: Vec<u8> = frames.iter().flat_map(|f| f.iter().copied()).collect();
        // Every possible first-write split point, including 0 and all.
        for split in 0..=total.len() {
            let mut wb = WriteBuf::new();
            for f in &frames {
                wb.push(f.clone());
            }
            assert_eq!(wb.bytes(), total.len());
            let mut w = Choppy { written: Vec::new(), grants: vec![split] };
            assert!(!wb.flush(&mut w).unwrap() || split == total.len());
            // Default `write_vectored` consumes one buffer per call:
            // one generous grant per remaining frame drains everything.
            let mut w2 = Choppy { written: w.written, grants: vec![usize::MAX; 4] };
            assert!(wb.flush(&mut w2).unwrap(), "second grant drains");
            assert_eq!(w2.written, total, "split at {split} must not corrupt the stream");
            assert!(wb.is_empty());
            assert_eq!(wb.bytes(), 0);
        }
    }

    #[test]
    fn write_buf_take_frames_restores_head_from_byte_zero() {
        let mut wb = WriteBuf::new();
        wb.push(Bytes::from_static(b"abcdef"));
        wb.push(Bytes::from_static(b"ghi"));
        // Write 2 bytes of the head, then stall.
        let mut w = Choppy { written: Vec::new(), grants: vec![2] };
        assert!(!wb.flush(&mut w).unwrap());
        let frames = wb.take_frames();
        assert_eq!(frames, vec![Bytes::from_static(b"abcdef"), Bytes::from_static(b"ghi")]);
        assert!(wb.is_empty());
    }

    #[test]
    fn connect_error_converts_to_io() {
        let e = ConnectError {
            attempts: 7,
            last: std::io::Error::new(std::io::ErrorKind::ConnectionRefused, "nope"),
        };
        let msg = e.to_string();
        assert!(msg.contains("7 attempts"), "{msg}");
        let io: std::io::Error = e.into();
        assert_eq!(io.kind(), std::io::ErrorKind::ConnectionRefused);
    }

    #[test]
    fn stats_snapshot_roundtrip() {
        let s = LinkStats::default();
        s.on_degraded();
        s.on_reconnect();
        s.on_replayed(3);
        s.on_shed(2);
        s.on_healed();
        let snap = s.snapshot();
        assert_eq!(snap.degraded, 1);
        assert_eq!(snap.replayed_frames, 3);
        assert_eq!(snap.shed_frames, 2);
        assert_eq!(snap.healed, 1);
        assert_eq!(snap.suspicions, 0);
    }
}
