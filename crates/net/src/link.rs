//! Per-link transport resilience primitives.
//!
//! AllConcur's failure model (§3, §4.2.2) distinguishes *process*
//! failures — the ◇P detector's job — from *transient link* faults,
//! which should be healed below the protocol so they never surface as
//! suspicions. This module holds the pieces the TCP runtime composes
//! into its per-link state machine (Connected → Degraded → Down):
//!
//! * [`BackoffPolicy`] — capped exponential backoff with deterministic
//!   seeded jitter, shared by initial connects and reconnects;
//! * [`ConnectError`] — typed connect failure carrying the attempt
//!   count;
//! * [`FrameQueue`] — the bounded per-link outbound buffer with
//!   high/low watermark hysteresis that keeps Degraded memory-safe;
//! * [`LinkStats`] — atomic counters read by tests, the nemesis
//!   harness, and CI failure dumps.
//!
//! See `DESIGN.md` § "Transport resilience & admission control" for the
//! state-machine diagram and parameter rationale.

use bytes::Bytes;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// xorshift64* step — the same tiny generator the runtime's drop
/// sampler uses, so resilience code adds no dependency on `rand`.
fn xorshift_star(mut x: u64) -> u64 {
    if x == 0 {
        x = 0x9e37_79b9_7f4a_7c15;
    }
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

/// Capped exponential backoff with deterministic seeded jitter.
///
/// Attempt `k` (0-based) waits `min(base · 2ᵏ, cap)` plus a jitter in
/// `[0, delay/2]` drawn from an xorshift64* stream keyed by
/// `(seed, k)`. The jitter is a pure function of the seed and attempt
/// number — scripted tests replay byte-for-byte — yet seeds differ per
/// link, so a cluster-wide outage does not produce synchronized
/// reconnect stampedes.
#[derive(Debug, Clone, Copy)]
pub struct BackoffPolicy {
    /// First-attempt delay (the exponential base).
    pub base: Duration,
    /// Upper bound on the exponential component; with jitter the total
    /// delay never exceeds `1.5 × cap`.
    pub cap: Duration,
    /// Jitter stream seed. Key it per link (e.g. `id ⊕ peer`) so links
    /// de-phase.
    pub seed: u64,
}

impl BackoffPolicy {
    /// Policy with the given base/cap and jitter seed.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> BackoffPolicy {
        BackoffPolicy { base, cap, seed }
    }

    /// Delay before retry attempt `attempt` (0-based).
    pub fn delay(&self, attempt: u32) -> Duration {
        let mult = 1u64 << attempt.min(16);
        let base = u64::try_from(self.base.as_nanos()).unwrap_or(u64::MAX);
        let cap = u64::try_from(self.cap.as_nanos()).unwrap_or(u64::MAX);
        let exp = base.saturating_mul(mult).min(cap);
        let jitter = xorshift_star(self.seed ^ u64::from(attempt).wrapping_add(1)) % (exp / 2 + 1);
        Duration::from_nanos(exp.saturating_add(jitter))
    }
}

/// Typed connect failure: how many attempts were made and the last
/// underlying I/O error. Convertible back to [`std::io::Error`] (same
/// kind, this as the source) for callers that only speak `io::Result`.
#[derive(Debug)]
pub struct ConnectError {
    /// Number of connection attempts made before giving up.
    pub attempts: u32,
    /// The error from the final attempt.
    pub last: std::io::Error,
}

impl fmt::Display for ConnectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "connect failed after {} attempts: {}", self.attempts, self.last)
    }
}

impl std::error::Error for ConnectError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.last)
    }
}

impl From<ConnectError> for std::io::Error {
    fn from(e: ConnectError) -> std::io::Error {
        std::io::Error::new(e.last.kind(), e)
    }
}

/// Connect to `addr`, retrying under `policy` for up to `attempts`
/// attempts (clamped to ≥ 1). Used both for the runtime's initial
/// successor connections and — via the same policy — its Degraded-link
/// reconnects, so the two paths share one backoff behaviour.
///
/// On exhaustion returns a [`ConnectError`] carrying the attempt count
/// and the last underlying error.
pub fn connect_with_retry(
    addr: std::net::SocketAddr,
    attempts: u32,
    policy: &BackoffPolicy,
) -> Result<std::net::TcpStream, ConnectError> {
    let attempts = attempts.max(1);
    let mut last: Option<std::io::Error> = None;
    for k in 0..attempts {
        match std::net::TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => last = Some(e),
        }
        if k + 1 < attempts {
            std::thread::sleep(policy.delay(k));
        }
    }
    Err(ConnectError {
        attempts,
        last: last.unwrap_or_else(|| std::io::Error::other("connect made no attempts")),
    })
}

/// Bounded per-link outbound frame buffer with high/low watermark
/// hysteresis.
///
/// While a link is Degraded, outbound frames queue here for replay on
/// reconnect. Crossing the *high* watermark enters saturation: new
/// frames are shed (counted, never stored) until the queue drains below
/// the *low* watermark — hysteresis, so a queue hovering at the
/// boundary does not flap between accepting and shedding. Shedding a
/// protocol frame is equivalent to a transient message-loss fault,
/// which the overlay's vertex-connectivity already tolerates; the point
/// is that Degraded links hold **bounded** memory no matter how long
/// the outage lasts.
#[derive(Debug)]
pub struct FrameQueue {
    frames: VecDeque<Bytes>,
    high: usize,
    low: usize,
    saturated: bool,
    shed: u64,
}

impl FrameQueue {
    /// Queue with the given watermarks. `high` is clamped to ≥ 1 and
    /// `low` to below `high`, so the hysteresis band always exists.
    pub fn new(high: usize, low: usize) -> FrameQueue {
        let high = high.max(1);
        FrameQueue {
            frames: VecDeque::new(),
            high,
            low: low.min(high - 1),
            saturated: false,
            shed: 0,
        }
    }

    /// Enqueue a frame for replay. Returns `false` (and counts a shed)
    /// when the queue is saturated.
    pub fn push(&mut self, frame: Bytes) -> bool {
        if self.saturated || self.frames.len() >= self.high {
            self.saturated = true;
            self.shed += 1;
            return false;
        }
        self.frames.push_back(frame);
        true
    }

    /// Return a frame to the front of the queue, bypassing the
    /// watermarks — the replay path puts back the one frame a dying
    /// reconnect failed to write, so occupancy exceeds `high` by at
    /// most one.
    pub fn push_front(&mut self, frame: Bytes) {
        self.frames.push_front(frame);
    }

    /// Dequeue the oldest frame. Dropping below the low watermark exits
    /// saturation.
    pub fn pop(&mut self) -> Option<Bytes> {
        let f = self.frames.pop_front();
        if self.saturated && self.frames.len() <= self.low {
            self.saturated = false;
        }
        f
    }

    /// Frames currently buffered.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the queue holds no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Whether the queue is shedding (above high, not yet drained below
    /// low).
    pub fn is_saturated(&self) -> bool {
        self.saturated
    }

    /// Frames shed since creation.
    pub fn shed(&self) -> u64 {
        self.shed
    }
}

/// Atomic resilience counters for one runtime, shared between the
/// protocol thread (writes) and observers (tests, nemesis reports, CI
/// failure dumps).
#[derive(Debug, Default)]
pub struct LinkStats {
    degraded: AtomicU64,
    reconnects: AtomicU64,
    replayed_frames: AtomicU64,
    grace_expired: AtomicU64,
    shed_frames: AtomicU64,
    reader_disconnects: AtomicU64,
    healed: AtomicU64,
    suspicions: AtomicU64,
    corrupt_frames: AtomicU64,
}

impl LinkStats {
    /// A writer link entered Degraded.
    pub fn on_degraded(&self) {
        self.degraded.fetch_add(1, Ordering::Relaxed);
    }

    /// A Degraded writer link reconnected.
    pub fn on_reconnect(&self) {
        self.reconnects.fetch_add(1, Ordering::Relaxed);
    }

    /// `n` buffered frames were replayed after a reconnect.
    pub fn on_replayed(&self, n: u64) {
        self.replayed_frames.fetch_add(n, Ordering::Relaxed);
    }

    /// A Degraded link exhausted its grace budget (→ Down).
    pub fn on_grace_expired(&self) {
        self.grace_expired.fetch_add(1, Ordering::Relaxed);
    }

    /// `n` outbound frames were shed by watermark saturation or a Down
    /// link.
    pub fn on_shed(&self, n: u64) {
        self.shed_frames.fetch_add(n, Ordering::Relaxed);
    }

    /// An inbound (reader) connection dropped.
    pub fn on_reader_disconnect(&self) {
        self.reader_disconnects.fetch_add(1, Ordering::Relaxed);
    }

    /// A predecessor reconnected while its disconnect grace was still
    /// pending — the flap healed without a suspicion.
    pub fn on_healed(&self) {
        self.healed.fetch_add(1, Ordering::Relaxed);
    }

    /// A disconnect grace expired and escalated to a suspicion.
    pub fn on_suspicion(&self) {
        self.suspicions.fetch_add(1, Ordering::Relaxed);
    }

    /// An inbound frame failed its CRC (or decode) check. The
    /// connection is dropped and healed like any other link fault; the
    /// corrupted payload is never delivered.
    pub fn on_corrupt_frame(&self) {
        self.corrupt_frames.fetch_add(1, Ordering::Relaxed);
    }

    /// Consistent-enough point-in-time copy (individual counters are
    /// each read atomically).
    pub fn snapshot(&self) -> LinkStatsSnapshot {
        LinkStatsSnapshot {
            degraded: self.degraded.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            replayed_frames: self.replayed_frames.load(Ordering::Relaxed),
            grace_expired: self.grace_expired.load(Ordering::Relaxed),
            shed_frames: self.shed_frames.load(Ordering::Relaxed),
            reader_disconnects: self.reader_disconnects.load(Ordering::Relaxed),
            healed: self.healed.load(Ordering::Relaxed),
            suspicions: self.suspicions.load(Ordering::Relaxed),
            corrupt_frames: self.corrupt_frames.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value copy of [`LinkStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStatsSnapshot {
    /// Times any writer link entered Degraded.
    pub degraded: u64,
    /// Successful writer reconnections.
    pub reconnects: u64,
    /// Frames replayed from Degraded queues after reconnects.
    pub replayed_frames: u64,
    /// Writer links whose grace budget expired (→ Down).
    pub grace_expired: u64,
    /// Outbound frames shed (watermark saturation or Down links).
    pub shed_frames: u64,
    /// Inbound (reader) connection drops observed.
    pub reader_disconnects: u64,
    /// Disconnect graces cancelled by a predecessor reconnecting.
    pub healed: u64,
    /// Disconnect graces that expired into suspicions.
    pub suspicions: u64,
    /// Inbound frames rejected by the CRC/decode check (each dropped
    /// the connection, which then healed through reader grace).
    pub corrupt_frames: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_capped() {
        let p = BackoffPolicy::new(Duration::from_millis(5), Duration::from_millis(80), 42);
        let q = BackoffPolicy::new(Duration::from_millis(5), Duration::from_millis(80), 42);
        for k in 0..30 {
            assert_eq!(p.delay(k), q.delay(k), "same seed+attempt must replay");
            assert!(p.delay(k) <= Duration::from_millis(120), "cap × 1.5 bound at attempt {k}");
        }
        // Exponential growth below the cap: attempt 3's floor is 8× base.
        assert!(p.delay(3) >= Duration::from_millis(40));
        // Different seeds de-phase.
        let r = BackoffPolicy::new(Duration::from_millis(5), Duration::from_millis(80), 43);
        assert!((0..8).any(|k| r.delay(k) != p.delay(k)), "jitter must depend on the seed");
    }

    #[test]
    fn backoff_huge_attempt_does_not_overflow() {
        let p = BackoffPolicy::new(Duration::from_secs(1), Duration::from_secs(2), 7);
        assert!(p.delay(u32::MAX) <= Duration::from_secs(3));
    }

    #[test]
    fn frame_queue_watermark_hysteresis() {
        let mut q = FrameQueue::new(4, 2);
        for i in 0..4u8 {
            assert!(q.push(Bytes::from(vec![i])), "below high watermark");
        }
        // At the high watermark: saturation begins, frames shed.
        assert!(!q.push(Bytes::from_static(b"x")));
        assert!(q.is_saturated());
        assert_eq!(q.shed(), 1);
        // Draining to 3 (> low) keeps shedding — hysteresis.
        assert!(q.pop().is_some());
        assert!(q.is_saturated());
        assert!(!q.push(Bytes::from_static(b"y")));
        assert_eq!(q.shed(), 2);
        // Draining to the low watermark reopens the queue.
        assert!(q.pop().is_some());
        assert!(!q.is_saturated());
        assert!(q.push(Bytes::from_static(b"z")));
        // FIFO order preserved across the episode.
        assert_eq!(q.pop(), Some(Bytes::from(vec![2u8])));
    }

    #[test]
    fn frame_queue_degenerate_watermarks_clamped() {
        let mut q = FrameQueue::new(0, 9); // high→1, low→0
        assert!(q.push(Bytes::from_static(b"a")));
        assert!(!q.push(Bytes::from_static(b"b")));
        assert!(q.pop().is_some());
        assert!(q.push(Bytes::from_static(b"c")));
    }

    #[test]
    fn connect_error_converts_to_io() {
        let e = ConnectError {
            attempts: 7,
            last: std::io::Error::new(std::io::ErrorKind::ConnectionRefused, "nope"),
        };
        let msg = e.to_string();
        assert!(msg.contains("7 attempts"), "{msg}");
        let io: std::io::Error = e.into();
        assert_eq!(io.kind(), std::io::ErrorKind::ConnectionRefused);
    }

    #[test]
    fn stats_snapshot_roundtrip() {
        let s = LinkStats::default();
        s.on_degraded();
        s.on_reconnect();
        s.on_replayed(3);
        s.on_shed(2);
        s.on_healed();
        let snap = s.snapshot();
        assert_eq!(snap.degraded, 1);
        assert_eq!(snap.replayed_frames, 3);
        assert_eq!(snap.shed_frames, 2);
        assert_eq!(snap.healed, 1);
        assert_eq!(snap.suspicions, 0);
    }
}
