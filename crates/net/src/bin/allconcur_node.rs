//! `allconcur-node` — run one AllConcur server as a standalone process.
//!
//! Minimal line-oriented interface for real multi-process (or
//! multi-host) deployments:
//!
//! ```text
//! allconcur_node --id 0 --cluster cluster.txt [--degree 3]
//! ```
//!
//! `cluster.txt` lists one server per line: `id tcp_addr udp_addr`, e.g.
//!
//! ```text
//! 0 127.0.0.1:7000 127.0.0.1:7100
//! 1 127.0.0.1:7001 127.0.0.1:7101
//! 2 127.0.0.1:7002 127.0.0.1:7102
//! ...
//! ```
//!
//! The overlay is GS(n, degree) when valid (degree defaults to the
//! 6-nines Table 3 choice), otherwise the complete digraph. Stdin lines
//! are A-broadcast as this server's round payloads; deliveries print to
//! stdout as `ROUND <r> <origin>:<payload> ...`. An empty stdin line
//! participates in the round with an empty message; EOF keeps serving
//! reactive rounds until SIGKILL.

use allconcur_core::config::{Config, FdMode};
use allconcur_core::membership::build_overlay;
use allconcur_graph::ReliabilityModel;
use allconcur_net::heartbeat::FdParams;
use allconcur_net::runtime::{NodeRuntime, RuntimeOptions};
use bytes::Bytes;
use std::io::BufRead;
use std::net::{SocketAddr, TcpListener, UdpSocket};
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!("usage: allconcur_node --id N --cluster FILE [--degree D] [--fd-timeout-ms T]");
    std::process::exit(2);
}

fn arg(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let id: u32 = arg("--id").and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
    let cluster_file = arg("--cluster").unwrap_or_else(|| usage());
    let fd_timeout_ms: u64 = arg("--fd-timeout-ms").and_then(|v| v.parse().ok()).unwrap_or(100);

    // Parse the cluster file.
    let text = std::fs::read_to_string(&cluster_file).unwrap_or_else(|e| {
        eprintln!("cannot read {cluster_file}: {e}");
        std::process::exit(1);
    });
    let mut tcp_addrs: Vec<SocketAddr> = Vec::new();
    let mut udp_addrs: Vec<SocketAddr> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        if parts.len() != 3 {
            eprintln!("{cluster_file}:{}: expected `id tcp udp`", lineno + 1);
            std::process::exit(1);
        }
        // lint:allow(no_panic): operator CLI startup — malformed cluster files abort loudly before any protocol thread exists
        let idx: usize = parts[0].parse().expect("numeric server id");
        assert_eq!(idx, tcp_addrs.len(), "server ids must be dense and ordered");
        // lint:allow(no_panic): operator CLI startup — malformed cluster files abort loudly before any protocol thread exists
        tcp_addrs.push(parts[1].parse().expect("tcp socket address"));
        // lint:allow(no_panic): operator CLI startup — malformed cluster files abort loudly before any protocol thread exists
        udp_addrs.push(parts[2].parse().expect("udp socket address"));
    }
    let n = tcp_addrs.len();
    assert!((id as usize) < n, "--id {id} outside the {n}-server cluster");

    // Overlay: GS with the requested or Table 3 degree.
    let graph = match arg("--degree").and_then(|v| v.parse::<usize>().ok()) {
        Some(d) => allconcur_graph::gs::gs_digraph(n, d).unwrap_or_else(|e| {
            eprintln!("invalid overlay GS({n},{d}): {e}");
            std::process::exit(1);
        }),
        None => build_overlay(n, &ReliabilityModel::paper_default(), 6.0),
    };
    let k = allconcur_graph::connectivity::vertex_connectivity(&graph);
    eprintln!(
        "allconcur-node {id}/{n}: overlay degree {}, connectivity {k} (tolerates {} crashes)",
        graph.degree(),
        k.saturating_sub(1)
    );
    let cfg = Config {
        graph: Arc::new(graph),
        resilience: k.saturating_sub(1),
        fd_mode: FdMode::Perfect,
        round_window: 1,
    };

    let listener = TcpListener::bind(tcp_addrs[id as usize]).unwrap_or_else(|e| {
        eprintln!("bind {}: {e}", tcp_addrs[id as usize]);
        std::process::exit(1);
    });
    // lint:allow(no_panic): operator CLI startup — an unbindable FD socket is a deployment error worth aborting on
    let udp = UdpSocket::bind(udp_addrs[id as usize]).expect("bind UDP");
    let opts = RuntimeOptions {
        fd: FdParams {
            heartbeat_period: Duration::from_millis(10),
            timeout: Duration::from_millis(fd_timeout_ms),
        },
        suspect_on_disconnect: true,
        connect_attempts: 600, // allow ~60s for peers to come up
        connect_backoff: Duration::from_millis(100),
        ..RuntimeOptions::default()
    };
    let node = NodeRuntime::start(id, cfg, listener, udp, tcp_addrs, udp_addrs, opts)
        .unwrap_or_else(|e| {
            eprintln!("startup failed: {e}");
            std::process::exit(1);
        });
    eprintln!(
        "allconcur-node {id}: event loop up, connecting to peers; reading payloads from stdin"
    );

    // Delivery printer thread.
    let stdin = std::io::stdin();
    std::thread::scope(|scope| {
        scope.spawn(|| loop {
            match node.recv_delivery(Duration::from_millis(200)) {
                Some(d) => {
                    let rendered: Vec<String> = d
                        .messages
                        .iter()
                        .map(|(o, p)| format!("{o}:{}", String::from_utf8_lossy(p)))
                        .collect();
                    println!("ROUND {} {}", d.round, rendered.join(" "));
                }
                None => continue,
            }
        });
        for line in stdin.lock().lines() {
            let Ok(line) = line else { break };
            if !node.broadcast(Bytes::from(line.into_bytes())) {
                eprintln!("allconcur-node {id}: busy — input shed, retry the line");
            }
        }
        // EOF: keep participating reactively (empty messages) forever.
        eprintln!("allconcur-node {id}: stdin closed; serving reactively");
        loop {
            std::thread::park();
        }
    });
}
