#![warn(missing_docs)]
//! # allconcur-net — sockets-based TCP transport for AllConcur
//!
//! The paper's implementation runs over standard sockets-based TCP (and
//! InfiniBand Verbs; §5). This crate is the TCP half: it drives the
//! *same* [`allconcur_core::server::Server`] state machine as the
//! simulator, over real `std::net` sockets with one OS process hosting
//! one or more servers.
//!
//! * [`codec`] — length-prefixed framing of protocol messages plus the
//!   connection handshake;
//! * [`runtime`] — per-server runtime: listener, per-predecessor reader
//!   threads, a protocol thread owning the state machine, buffered
//!   writers to overlay successors;
//! * [`heartbeat`] — UDP heartbeats and the timeout-based failure
//!   detector (`Δ_hb` / `Δ_to`, §3.2); connection loss can optionally be
//!   treated as an immediate suspicion to accelerate detection;
//! * [`cluster`] — [`cluster::LocalCluster`]: spin up a full deployment
//!   on loopback for tests, examples, and benches.
//!
//! The integration tests in `tests/` run multi-server agreement,
//! including crash-failure runs, over real TCP on 127.0.0.1.

pub mod cluster;
pub mod codec;
pub mod heartbeat;
pub mod runtime;

pub use cluster::LocalCluster;
