#![warn(missing_docs)]
//! # allconcur-net — sockets-based TCP transport for AllConcur
//!
//! The paper's implementation runs over standard sockets-based TCP (and
//! InfiniBand Verbs; §5). This crate is the TCP half: it drives the
//! *same* [`allconcur_core::server::Server`] state machine as the
//! simulator, over real `std::net` sockets with one OS process hosting
//! one or more servers.
//!
//! * [`codec`] — length-prefixed framing of protocol messages plus the
//!   connection handshake;
//! * [`runtime`] — per-server runtime: listener, per-predecessor reader
//!   threads, a protocol thread owning the state machine, buffered
//!   writers to overlay successors;
//! * [`heartbeat`] — UDP heartbeats and the timeout-based failure
//!   detector (`Δ_hb` / `Δ_to`, §3.2) with the §3.3.2 adaptive timeout;
//!   connection loss escalates to a suspicion only after the link-grace
//!   budget expires without a reconnect;
//! * [`link`] — per-link resilience primitives: capped-backoff-with-
//!   jitter reconnect policy, bounded watermarked frame queues, and the
//!   resilience counters;
//! * [`cluster`] — [`cluster::LocalCluster`]: spin up a full deployment
//!   on loopback for tests, examples, and benches.
//!
//! The integration tests in `tests/` run multi-server agreement,
//! including crash-failure and link-flap runs, over real TCP on
//! 127.0.0.1.

pub mod cluster;
pub mod codec;
pub mod heartbeat;
pub mod link;
pub mod runtime;

pub use cluster::LocalCluster;
