#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # allconcur-net — sockets-based TCP transport for AllConcur
//!
//! The paper's implementation runs each server as a libev event loop
//! over standard sockets-based TCP (and InfiniBand Verbs; §5). This
//! crate is the TCP half: it drives the *same*
//! [`allconcur_core::server::Server`] state machine as the simulator,
//! over real `std::net` sockets on an epoll-driven reactor pool, with
//! one OS process hosting one or more servers.
//!
//! * [`codec`] — length-prefixed framing of protocol messages plus the
//!   connection handshake;
//! * [`event_loop`] — the epoll reactor pool: per-link readiness state
//!   machines, coalesced vectored writes, timer-driven reconnect
//!   backoff, heartbeat emission, and FD sweeps, all on O(cores)
//!   threads;
//! * [`runtime`] — per-server handle: registers a server with a
//!   reactor and owns the application-facing channels (broadcast in,
//!   deliveries out) plus the fault-injection surface;
//! * [`heartbeat`] — UDP heartbeats and the timeout-based failure
//!   detector (`Δ_hb` / `Δ_to`, §3.2) with the §3.3.2 adaptive timeout;
//!   connection loss escalates to a suspicion only after the link-grace
//!   budget expires without a reconnect;
//! * [`link`] — per-link resilience primitives: capped-backoff-with-
//!   jitter reconnect policy, bounded watermarked frame queues, the
//!   coalescing write buffer, and the resilience counters;
//! * [`cluster`] — [`cluster::LocalCluster`]: spin up a full deployment
//!   on loopback (sharing one reactor pool) for tests, examples, and
//!   benches.
//!
//! The integration tests in `tests/` run multi-server agreement,
//! including crash-failure and link-flap runs, over real TCP on
//! 127.0.0.1.

pub mod cluster;
pub mod codec;
pub mod event_loop;
pub mod heartbeat;
pub mod link;
pub mod runtime;

pub use cluster::LocalCluster;
