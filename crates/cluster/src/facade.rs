//! The [`Cluster`] facade: one submit/deliver API over any
//! [`Transport`].
//!
//! ```no_run
//! use allconcur_cluster::Cluster;
//! use allconcur_graph::gs::gs_digraph;
//! use bytes::Bytes;
//! use std::time::Duration;
//!
//! let mut cluster = Cluster::sim(gs_digraph(8, 3).unwrap());
//! let payloads: Vec<Bytes> = (0..8u8).map(|i| Bytes::from(vec![i; 64])).collect();
//! let round = cluster.run_round(&payloads, Duration::from_secs(10)).unwrap();
//! let reference = &round[&0];
//! for delivery in round.values() {
//!     assert_eq!(delivery.messages, reference.messages, "atomic broadcast");
//! }
//! ```

use crate::error::ClusterError;
use crate::sim::{SimOptions, SimTransport};
use crate::tcp::TcpTransport;
use crate::transport::{FaultCommand, Transport};
use allconcur_core::delivery::Delivery;
use allconcur_core::ServerId;
use allconcur_graph::Digraph;
use allconcur_net::runtime::RuntimeOptions;
use bytes::Bytes;
use std::collections::{BTreeMap, VecDeque};
use std::time::Duration;

/// `Instant::now() + timeout` that survives `Duration::MAX` (clamps to a
/// far-future deadline instead of panicking on overflow).
fn saturating_deadline(timeout: Duration) -> std::time::Instant {
    let now = std::time::Instant::now();
    now.checked_add(timeout).unwrap_or_else(|| now + Duration::from_secs(60 * 60 * 24 * 365))
}

/// Receipt for one [`Cluster::submit`] call.
///
/// The handle records which server the payload was submitted through and
/// the payload itself; [`Cluster::wait_delivered`] turns it into the
/// delivery that carried the payload.
///
/// The `(origin, origin_seq)` pair is a correlation key: submissions
/// through one origin are carried in rounds in submission order, so the
/// `k`-th non-empty payload delivered for `origin` is the one with
/// `origin_seq == k` — no request ids on the wire needed. (The typed
/// `Service` layer in `allconcur-rsm` applies the same origin +
/// per-origin-sequence scheme one level down, at command granularity
/// within batched payloads.)
#[derive(Debug, Clone)]
pub struct SubmitHandle {
    origin: ServerId,
    seq: u64,
    origin_seq: u64,
    payload: Bytes,
}

impl SubmitHandle {
    /// The server the payload was submitted through.
    pub fn origin(&self) -> ServerId {
        self.origin
    }

    /// Facade-wide submission sequence number (submission order).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Per-origin submission sequence number: how many payloads were
    /// submitted through [`SubmitHandle::origin`] before this one (in
    /// the current configuration — reconfiguration restarts the count).
    pub fn origin_seq(&self) -> u64 {
        self.origin_seq
    }

    /// The submitted payload.
    pub fn payload(&self) -> &Bytes {
        &self.payload
    }
}

/// A running AllConcur deployment behind the unified submit/deliver API.
///
/// Construct over the simulator with [`Cluster::sim`] /
/// [`Cluster::sim_with`] or over real TCP sockets with [`Cluster::tcp`]
/// / [`Cluster::tcp_with`] — every other call is backend-agnostic, so
/// the same scenario runs unchanged on both (see the cross-backend
/// parity test in the umbrella crate).
pub struct Cluster {
    transport: Box<dyn Transport>,
    /// Per-server deliveries pulled from the transport but not yet
    /// consumed, in per-server A-delivery order.
    inbox: Vec<VecDeque<Delivery>>,
    next_seq: u64,
    /// Per-origin submission counters backing
    /// [`SubmitHandle::origin_seq`].
    next_origin_seq: Vec<u64>,
    /// The error that ended the last [`Cluster::deliveries`] stream, when
    /// it was something other than an ordinary timeout or a dead server.
    stream_error: Option<ClusterError>,
    /// Optional bound on each server's buffered-delivery queue; when
    /// exceeded, the oldest buffered delivery is dropped and counted.
    inbox_cap: Option<usize>,
    /// Deliveries dropped per server under [`Cluster::set_inbox_cap`].
    dropped: Vec<u64>,
}

impl Cluster {
    /// Wrap an arbitrary transport.
    pub fn new(transport: impl Transport + 'static) -> Cluster {
        let n = transport.n();
        Cluster {
            transport: Box::new(transport),
            inbox: vec![VecDeque::new(); n],
            next_seq: 0,
            next_origin_seq: vec![0; n],
            stream_error: None,
            inbox_cap: None,
            dropped: vec![0; n],
        }
    }

    /// Bound the per-server buffer of deliveries pulled while waiting
    /// for other servers (unbounded by default). Long-running consumers
    /// that stream only a few servers should set this: without a cap,
    /// every unread server's deliveries are retained forever. When the
    /// cap is exceeded the *oldest* buffered delivery for that server is
    /// dropped and counted in [`Cluster::dropped_deliveries`].
    pub fn set_inbox_cap(&mut self, cap: Option<usize>) {
        self.inbox_cap = cap;
    }

    /// Deliveries dropped at `id` because of [`Cluster::set_inbox_cap`].
    pub fn dropped_deliveries(&self, id: ServerId) -> u64 {
        self.dropped.get(id as usize).copied().unwrap_or(0)
    }

    /// Buffer a delivery pulled for a server nobody is currently waiting
    /// on, honouring the inbox cap.
    fn buffer(&mut self, at: ServerId, delivery: Delivery) {
        let queue = &mut self.inbox[at as usize];
        queue.push_back(delivery);
        if let Some(cap) = self.inbox_cap {
            while queue.len() > cap {
                queue.pop_front();
                self.dropped[at as usize] += 1;
            }
        }
    }

    /// A simulated deployment over `graph` with default [`SimOptions`]
    /// (the paper's TCP-cluster LogP profile).
    pub fn sim(graph: Digraph) -> Cluster {
        Cluster::sim_with(graph, SimOptions::default())
    }

    /// A simulated deployment with explicit options.
    pub fn sim_with(graph: Digraph, opts: SimOptions) -> Cluster {
        Cluster::new(SimTransport::new(graph, opts))
    }

    /// A real-sockets deployment on loopback with default
    /// [`RuntimeOptions`].
    pub fn tcp(graph: Digraph) -> Result<Cluster, ClusterError> {
        Cluster::tcp_with(graph, RuntimeOptions::default())
    }

    /// A real-sockets deployment with explicit options.
    pub fn tcp_with(graph: Digraph, opts: RuntimeOptions) -> Result<Cluster, ClusterError> {
        Ok(Cluster::new(TcpTransport::spawn(graph, opts)?))
    }

    /// Backend name (`"sim"` or `"tcp"` for the built-in transports).
    pub fn backend(&self) -> &'static str {
        self.transport.name()
    }

    /// Number of configured servers (alive or not).
    pub fn n(&self) -> usize {
        self.transport.n()
    }

    /// Whether `id` is live.
    pub fn is_live(&self, id: ServerId) -> bool {
        self.transport.is_live(id)
    }

    /// Servers currently live.
    pub fn live_servers(&self) -> Vec<ServerId> {
        (0..self.n() as ServerId).filter(|&id| self.transport.is_live(id)).collect()
    }

    /// Submit `payload` as `origin`'s message for its next open round.
    ///
    /// Under saturation the transport may shed the submission with
    /// [`ClusterError::Busy`] instead of queueing it unboundedly; the
    /// payload had no effect and can be retried after the suggested
    /// pause.
    ///
    /// Submissions queue: each server carries one payload per round, and
    /// extras ride in later rounds (the paper's request batching, §5).
    pub fn submit(
        &mut self,
        origin: ServerId,
        payload: Bytes,
    ) -> Result<SubmitHandle, ClusterError> {
        self.transport.submit(origin, payload.clone())?;
        let seq = self.next_seq;
        self.next_seq += 1;
        let origin_seq = self.next_origin_seq[origin as usize];
        self.next_origin_seq[origin as usize] += 1;
        Ok(SubmitHandle { origin, seq, origin_seq, payload })
    }

    /// Non-blocking variant of [`Cluster::next_delivery`]: the next
    /// delivery at any server if one is already available (buffered, or
    /// producible without waiting), else `Ok(None)`. The drain primitive
    /// for layered consumers that interleave submission and delivery
    /// handling (the `allconcur-rsm` `Service` uses it to resolve
    /// already-agreed responses without blocking).
    pub fn try_next_delivery(&mut self) -> Result<Option<(ServerId, Delivery)>, ClusterError> {
        match self.next_delivery(Duration::ZERO) {
            Ok(next) => Ok(Some(next)),
            Err(ClusterError::Timeout { .. }) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// The next delivery at any server, in backend order. Buffered
    /// deliveries (pulled while waiting for a specific server) are
    /// served first, lowest server id first.
    pub fn next_delivery(
        &mut self,
        timeout: Duration,
    ) -> Result<(ServerId, Delivery), ClusterError> {
        for (id, queue) in self.inbox.iter_mut().enumerate() {
            if let Some(delivery) = queue.pop_front() {
                return Ok((id as ServerId, delivery));
            }
        }
        match self.transport.poll_delivery(timeout)? {
            Some(next) => Ok(next),
            None => Err(ClusterError::Timeout { waited: timeout }),
        }
    }

    /// The next delivery at server `id`, pulling the transport (and
    /// buffering other servers' deliveries) until one arrives.
    ///
    /// `timeout` bounds the *total* wait, even while other servers keep
    /// delivering. Waiting on a crashed server with no buffered
    /// deliveries fails fast with [`ClusterError::ServerDown`].
    pub fn recv_delivery(
        &mut self,
        id: ServerId,
        timeout: Duration,
    ) -> Result<Delivery, ClusterError> {
        if (id as usize) >= self.n() {
            return Err(ClusterError::UnknownServer(id));
        }
        if let Some(delivery) = self.inbox[id as usize].pop_front() {
            return Ok(delivery);
        }
        let deadline = saturating_deadline(timeout);
        loop {
            if !self.transport.is_live(id) {
                // A dead server can still flush deliveries it produced
                // before the crash; drain those before giving up.
                match self.transport.poll_delivery(Duration::ZERO)? {
                    Some((at, delivery)) if at == id => return Ok(delivery),
                    Some((at, delivery)) => {
                        self.buffer(at, delivery);
                        continue;
                    }
                    None => return Err(ClusterError::ServerDown(id)),
                }
            }
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return Err(ClusterError::Timeout { waited: timeout });
            }
            match self.transport.poll_delivery(remaining)? {
                Some((at, delivery)) if at == id => return Ok(delivery),
                Some((at, delivery)) => self.buffer(at, delivery),
                None => return Err(ClusterError::Timeout { waited: timeout }),
            }
        }
    }

    /// Pull-based iterator over server `id`'s deliveries. The stream
    /// ends at the first `timeout` with nothing to report, or when the
    /// server is down and drained. Any *other* terminating error
    /// (lost liveness, I/O failure, shutdown) is retrievable afterwards
    /// via [`Cluster::take_stream_error`].
    pub fn deliveries(&mut self, id: ServerId, timeout: Duration) -> Deliveries<'_> {
        self.stream_error = None;
        Deliveries { cluster: self, id, timeout }
    }

    /// The abnormal error (anything except a timeout or a dead server)
    /// that ended the most recent [`Cluster::deliveries`] stream, if any.
    pub fn take_stream_error(&mut self) -> Option<ClusterError> {
        self.stream_error.take()
    }

    /// Block until the payload behind `handle` is A-delivered at its
    /// origin, and return that delivery. Deliveries scanned on the way
    /// stay buffered for [`Cluster::recv_delivery`], and the matching
    /// delivery itself is *not* consumed.
    ///
    /// Matching is by payload identity: the earliest delivery whose
    /// origin entry equals the submitted bytes resolves the handle.
    /// Pipelining *identical* payloads through one server therefore
    /// resolves every such handle to the first carrying round, and an
    /// *empty* payload also matches rounds the server joined with the
    /// reactive empty broadcast of Algorithm 1 line 15 — embed a request
    /// id in the payload (e.g. [`SubmitHandle::seq`]) when instances
    /// must be told apart.
    pub fn wait_delivered(
        &mut self,
        handle: &SubmitHandle,
        timeout: Duration,
    ) -> Result<Delivery, ClusterError> {
        let origin = handle.origin;
        if (origin as usize) >= self.n() {
            return Err(ClusterError::UnknownServer(origin));
        }
        let carries = |d: &Delivery| d.payload_of(origin) == Some(&handle.payload);
        if let Some(found) = self.inbox[origin as usize].iter().find(|d| carries(d)) {
            return Ok(found.clone());
        }
        let deadline = saturating_deadline(timeout);
        loop {
            if !self.transport.is_live(origin) {
                // Flush deliveries the origin produced before dying,
                // checking each for the match *before* buffering (the
                // inbox cap may evict what we are looking for).
                let mut found = self.inbox[origin as usize].iter().find(|d| carries(d)).cloned();
                while let Some((at, delivery)) = self.transport.poll_delivery(Duration::ZERO)? {
                    if found.is_none() && at == origin && carries(&delivery) {
                        found = Some(delivery.clone());
                    }
                    self.buffer(at, delivery);
                }
                return found.ok_or(ClusterError::ServerDown(origin));
            }
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return Err(ClusterError::Timeout { waited: timeout });
            }
            match self.transport.poll_delivery(remaining)? {
                Some((at, delivery)) => {
                    let hit = at == origin && carries(&delivery);
                    let result = hit.then(|| delivery.clone());
                    self.buffer(at, delivery);
                    if let Some(delivery) = result {
                        return Ok(delivery);
                    }
                }
                None => return Err(ClusterError::Timeout { waited: timeout }),
            }
        }
    }

    /// Run one lockstep round: submit `payloads[i]` for every live
    /// server `i`, then collect exactly one delivery per live server.
    ///
    /// `payloads` is indexed by server id and must cover the full
    /// configuration; entries of dead servers are ignored (pass
    /// anything, e.g. `Bytes::new()`).
    pub fn run_round(
        &mut self,
        payloads: &[Bytes],
        timeout: Duration,
    ) -> Result<BTreeMap<ServerId, Delivery>, ClusterError> {
        assert_eq!(payloads.len(), self.n(), "one payload per configured server");
        let live = self.live_servers();
        for &id in &live {
            self.transport.submit(id, payloads[id as usize].clone())?;
        }
        let mut round: BTreeMap<ServerId, Delivery> = BTreeMap::new();
        for &id in &live {
            let delivery = self.recv_delivery(id, timeout)?;
            round.insert(id, delivery);
        }
        Ok(round)
    }

    /// Fail-stop `id` right now; peers detect it via the backend's FD.
    /// Buffered deliveries already pulled from `id` remain readable.
    pub fn crash(&mut self, id: ServerId) -> Result<(), ClusterError> {
        self.transport.crash(id)
    }

    /// Inject a (possibly false) suspicion at `at` against `suspected`.
    pub fn suspect(&mut self, at: ServerId, suspected: ServerId) -> Result<(), ClusterError> {
        self.transport.suspect(at, suspected)
    }

    /// Inject a link-level fault (partition, loss, delay spike, reorder
    /// burst, link down/flap) or heal/clear one — the nemesis control
    /// surface.
    ///
    /// Support depends on the backend:
    ///
    /// | [`FaultCommand`]   | sim | tcp |
    /// |--------------------|-----|-----|
    /// | `Partition`        | yes | `Unsupported` |
    /// | `Isolate`          | yes | `Unsupported` |
    /// | `HealPartitions`   | yes | yes (no-op)   |
    /// | `Drop`             | yes | yes           |
    /// | `Delay`            | yes | `Unsupported` |
    /// | `Reorder`          | yes | `Unsupported` |
    /// | `LinkDown`         | yes | yes           |
    /// | `LinkFlap`         | yes | yes           |
    /// | `LinkUp`           | yes | yes           |
    /// | `ClearLinkFaults`  | yes | yes           |
    ///
    /// Unsupported commands return [`ClusterError::Unsupported`] and
    /// leave the deployment untouched, so callers can probe rather than
    /// special-case backends. See [`Transport::inject_fault`] for why the
    /// TCP column is sparse.
    pub fn inject_fault(&mut self, fault: &FaultCommand) -> Result<(), ClusterError> {
        self.transport.inject_fault(fault)
    }

    /// Set the round-pipelining window `W` (clamped to ≥ 1): how many
    /// consecutive agreement rounds every server keeps in flight.
    /// [`Cluster::submit`] already queues payloads ahead of the delivery
    /// frontier; the window controls how many of those queued rounds the
    /// protocol actually runs concurrently — `W` rounds in flight
    /// amortise the full network round-trip, so rounds/sec scales with
    /// `W` until CPU-bound. Deliveries stay strictly in round order per
    /// server. Survives [`Cluster::reconfigure`].
    pub fn set_round_window(&mut self, window: usize) -> Result<(), ClusterError> {
        self.transport.set_round_window(window)
    }

    /// Move the deployment to a fresh overlay (§3's agreed
    /// reconfiguration). Undelivered buffered deliveries are dropped;
    /// rounds restart from zero on the new configuration.
    pub fn reconfigure(&mut self, graph: Digraph) -> Result<(), ClusterError> {
        self.transport.reconfigure(graph)?;
        let n = self.transport.n();
        self.inbox = vec![VecDeque::new(); n];
        self.dropped = vec![0; n];
        self.next_origin_seq = vec![0; n];
        Ok(())
    }

    /// Graceful shutdown of every remaining server.
    pub fn shutdown(mut self) -> Result<(), ClusterError> {
        self.transport.shutdown()
    }

    /// The transport, for backend-specific instrumentation.
    pub fn transport_mut(&mut self) -> &mut dyn Transport {
        self.transport.as_mut()
    }

    /// The simulated backend, when this cluster runs on one — gives
    /// access to `SimCluster`'s latency/traffic/space instrumentation.
    pub fn sim_transport_mut(&mut self) -> Option<&mut SimTransport> {
        self.transport.as_any_mut().downcast_mut::<SimTransport>()
    }

    /// The TCP backend, when this cluster runs on one.
    pub fn tcp_transport_mut(&mut self) -> Option<&mut TcpTransport> {
        self.transport.as_any_mut().downcast_mut::<TcpTransport>()
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        let _ = self.transport.shutdown();
    }
}

/// Iterator returned by [`Cluster::deliveries`].
pub struct Deliveries<'a> {
    cluster: &'a mut Cluster,
    id: ServerId,
    timeout: Duration,
}

impl Iterator for Deliveries<'_> {
    type Item = Delivery;

    fn next(&mut self) -> Option<Delivery> {
        match self.cluster.recv_delivery(self.id, self.timeout) {
            Ok(delivery) => Some(delivery),
            // Ordinary ends of stream: nothing more in the window, or
            // the server is gone.
            Err(ClusterError::Timeout { .. } | ClusterError::ServerDown(_)) => None,
            // Abnormal end: remember it so the caller can distinguish a
            // quiet stream from a broken cluster.
            Err(e) => {
                self.cluster.stream_error = Some(e);
                None
            }
        }
    }
}
