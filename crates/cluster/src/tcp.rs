//! [`TcpTransport`] — the real-sockets backend of the
//! [`crate::Transport`] contract.
//!
//! Wraps an [`allconcur_net::LocalCluster`] (one OS-thread runtime per
//! server, loopback TCP for protocol messages, UDP heartbeats for the
//! FD). Submission buffering lives in each node's runtime, so `submit`
//! just forwards; `poll_delivery` round-robins the nodes' delivery
//! channels.

use crate::error::ClusterError;
use crate::transport::{FaultCommand, Transport};
use allconcur_core::delivery::Delivery;
use allconcur_core::ServerId;
use allconcur_graph::Digraph;
use allconcur_net::runtime::RuntimeOptions;
use allconcur_net::LocalCluster;
use bytes::Bytes;
use std::time::{Duration, Instant};

/// Backoff bounds for `poll_delivery`'s scans of the nodes' delivery
/// channels: start responsive, decay towards the cap while idle so a
/// long quiet wait does not pin a core.
const POLL_MIN: Duration = Duration::from_micros(50);
const POLL_MAX: Duration = Duration::from_millis(2);

/// Suggested retry pause reported with [`ClusterError::Busy`] when a
/// node's bounded input queue sheds a submission. One millisecond is a
/// few round-trips of loopback protocol work — long enough for the
/// protocol thread to drain real backlog, short enough that a
/// closed-loop client barely notices.
const SUBMIT_RETRY_AFTER: Duration = Duration::from_millis(1);

/// The TCP backend of the `Cluster` facade.
pub struct TcpTransport {
    cluster: Option<LocalCluster>,
    opts: RuntimeOptions,
    /// Configured size, kept stable across shutdown (so a shut-down
    /// transport reports `ShutDown` rather than phantom `UnknownServer`
    /// errors, matching the sim backend).
    n: usize,
    /// Round-robin cursor so one chatty server cannot starve the others'
    /// delivery reporting.
    cursor: usize,
    /// Deliveries rescued from a node's channel just before [`Transport::crash`]
    /// tears the node down — matching the simulator, where a victim's
    /// pre-crash deliveries stay observable.
    parked: std::collections::VecDeque<(ServerId, Delivery)>,
    /// Links with an active send-drop fault, so `ClearLinkFaults` can
    /// reset exactly the rates it set. Cleared on reconfigure (fresh
    /// runtimes start fault-free).
    lossy_links: std::collections::BTreeSet<(ServerId, ServerId)>,
    /// Links held down by [`FaultCommand::LinkDown`], so
    /// `ClearLinkFaults` can heal exactly the links it severed. Flaps
    /// are not tracked — they heal themselves. Cleared on reconfigure.
    downed_links: std::collections::BTreeSet<(ServerId, ServerId)>,
    /// Links with an active bit-flip fault, so `ClearLinkFaults` can
    /// reset exactly the rates it set. Cleared on reconfigure.
    flipping_links: std::collections::BTreeSet<(ServerId, ServerId)>,
}

impl TcpTransport {
    /// Spawn one server per overlay vertex on ephemeral loopback ports.
    pub fn spawn(graph: Digraph, opts: RuntimeOptions) -> Result<TcpTransport, ClusterError> {
        let cluster = LocalCluster::spawn(graph, opts)?;
        Ok(TcpTransport {
            n: cluster.n(),
            cluster: Some(cluster),
            opts,
            cursor: 0,
            parked: std::collections::VecDeque::new(),
            lossy_links: std::collections::BTreeSet::new(),
            downed_links: std::collections::BTreeSet::new(),
            flipping_links: std::collections::BTreeSet::new(),
        })
    }

    /// The wrapped loopback deployment.
    pub fn cluster(&self) -> Option<&LocalCluster> {
        self.cluster.as_ref()
    }

    fn live_cluster(&self) -> Result<&LocalCluster, ClusterError> {
        self.cluster.as_ref().ok_or(ClusterError::ShutDown)
    }

    fn check_id(&self, id: ServerId) -> Result<(), ClusterError> {
        if (id as usize) >= self.live_cluster()?.n() {
            return Err(ClusterError::UnknownServer(id));
        }
        Ok(())
    }
}

impl Transport for TcpTransport {
    fn name(&self) -> &'static str {
        "tcp"
    }

    fn n(&self) -> usize {
        self.n
    }

    fn is_live(&self, id: ServerId) -> bool {
        self.cluster.as_ref().is_some_and(|c| (id as usize) < c.n() && c.is_running(id))
    }

    fn submit(&mut self, origin: ServerId, payload: Bytes) -> Result<(), ClusterError> {
        self.check_id(origin)?;
        let cluster = self.live_cluster()?;
        if !cluster.is_running(origin) {
            return Err(ClusterError::ServerDown(origin));
        }
        if !cluster.broadcast(origin, payload) {
            // The node's bounded input queue stayed full past its
            // patience window: the submission was shed with no effect.
            return Err(ClusterError::Busy { retry_after: SUBMIT_RETRY_AFTER });
        }
        Ok(())
    }

    fn poll_delivery(
        &mut self,
        timeout: Duration,
    ) -> Result<Option<(ServerId, Delivery)>, ClusterError> {
        if let Some(next) = self.parked.pop_front() {
            return Ok(Some(next));
        }
        let n = self.live_cluster()?.n();
        let now = Instant::now();
        // Saturate: Duration::MAX must not overflow the deadline.
        let deadline = now
            .checked_add(timeout)
            .unwrap_or_else(|| now + Duration::from_secs(60 * 60 * 24 * 365));
        let mut backoff = POLL_MIN;
        loop {
            for offset in 0..n {
                let id = ((self.cursor + offset) % n) as ServerId;
                let next = self.live_cluster()?.try_recv_delivery(id);
                if let Some(delivery) = next {
                    self.cursor = (id as usize + 1) % n;
                    return Ok(Some((id, delivery)));
                }
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            std::thread::sleep(backoff.min(deadline - now));
            backoff = (backoff * 2).min(POLL_MAX);
        }
    }

    fn crash(&mut self, id: ServerId) -> Result<(), ClusterError> {
        self.check_id(id)?;
        let cluster = self.cluster.as_mut().ok_or(ClusterError::ShutDown)?;
        if !cluster.is_running(id) {
            return Err(ClusterError::ServerDown(id));
        }
        // Rescue deliveries the victim already produced: killing the node
        // drops its channel, and the simulator keeps these observable.
        // The drain happens after the node's threads join, so a round
        // completing during teardown cannot slip away.
        for delivery in cluster.kill_and_drain(id) {
            self.parked.push_back((id, delivery));
        }
        Ok(())
    }

    fn suspect(&mut self, at: ServerId, suspected: ServerId) -> Result<(), ClusterError> {
        self.check_id(at)?;
        self.check_id(suspected)?;
        let cluster = self.live_cluster()?;
        if !cluster.is_running(at) {
            return Err(ClusterError::ServerDown(at));
        }
        cluster.suspect(at, suspected);
        Ok(())
    }

    fn inject_fault(&mut self, fault: &FaultCommand) -> Result<(), ClusterError> {
        match fault {
            FaultCommand::Drop { from, to, ppm } => {
                self.check_id(*from)?;
                self.check_id(*to)?;
                // Clamp to 100%, matching the sim backend's contract.
                let ppm = (*ppm).min(allconcur_sim::fault::PPM);
                self.live_cluster()?.set_link_drop(*from, *to, ppm);
                if ppm == 0 {
                    self.lossy_links.remove(&(*from, *to));
                } else {
                    self.lossy_links.insert((*from, *to));
                }
                Ok(())
            }
            FaultCommand::BitFlip { from, to, ppm } => {
                self.check_id(*from)?;
                self.check_id(*to)?;
                // Clamp to 100%, matching the sim backend's contract.
                let ppm = (*ppm).min(allconcur_sim::fault::PPM);
                self.live_cluster()?.set_link_flip(*from, *to, ppm);
                if ppm == 0 {
                    self.flipping_links.remove(&(*from, *to));
                } else {
                    self.flipping_links.insert((*from, *to));
                }
                Ok(())
            }
            FaultCommand::LinkDown { from, to } => {
                self.check_id(*from)?;
                self.check_id(*to)?;
                self.live_cluster()?.link_down(*from, *to);
                self.downed_links.insert((*from, *to));
                Ok(())
            }
            FaultCommand::LinkFlap { from, to, down_for } => {
                self.check_id(*from)?;
                self.check_id(*to)?;
                self.live_cluster()?.link_flap(*from, *to, *down_for);
                Ok(())
            }
            FaultCommand::LinkUp { from, to } => {
                self.check_id(*from)?;
                self.check_id(*to)?;
                self.live_cluster()?.link_up(*from, *to);
                self.downed_links.remove(&(*from, *to));
                Ok(())
            }
            FaultCommand::ClearLinkFaults => {
                let cluster = self.live_cluster()?;
                for &(from, to) in &self.lossy_links {
                    cluster.set_link_drop(from, to, 0);
                }
                for &(from, to) in &self.downed_links {
                    cluster.link_up(from, to);
                }
                for &(from, to) in &self.flipping_links {
                    cluster.set_link_flip(from, to, 0);
                }
                self.lossy_links.clear();
                self.downed_links.clear();
                self.flipping_links.clear();
                Ok(())
            }
            // Nothing to heal: TCP cannot partition, so blanket scenario
            // teardown heals harmlessly.
            FaultCommand::HealPartitions => {
                self.live_cluster()?;
                Ok(())
            }
            FaultCommand::Partition { .. } => {
                Err(ClusterError::Unsupported("partitions on the TCP transport"))
            }
            FaultCommand::Isolate { .. } => {
                Err(ClusterError::Unsupported("link isolation on the TCP transport"))
            }
            FaultCommand::Delay { .. } => {
                Err(ClusterError::Unsupported("delay spikes on the TCP transport"))
            }
            FaultCommand::Reorder { .. } => {
                Err(ClusterError::Unsupported("reorder bursts on the TCP transport"))
            }
        }
    }

    fn set_round_window(&mut self, window: usize) -> Result<(), ClusterError> {
        // Remembered in the options so reconfiguration keeps the window.
        self.opts.round_window = window.max(1);
        self.live_cluster()?.set_round_window(window.max(1));
        Ok(())
    }

    fn reconfigure(&mut self, graph: Digraph) -> Result<(), ClusterError> {
        let old = self.cluster.take().ok_or(ClusterError::ShutDown)?;
        old.shutdown();
        // Rescued pre-crash deliveries belong to the old configuration;
        // carrying them across would replay old server ids and round
        // numbers into the new one (and diverge from the sim backend).
        self.parked.clear();
        // Fresh runtimes start fault-free; old link ids are meaningless
        // under the renumbered overlay.
        self.lossy_links.clear();
        self.downed_links.clear();
        self.flipping_links.clear();
        let fresh = LocalCluster::spawn(graph, self.opts)?;
        self.n = fresh.n();
        self.cluster = Some(fresh);
        self.cursor = 0;
        Ok(())
    }

    fn shutdown(&mut self) -> Result<(), ClusterError> {
        self.parked.clear();
        if let Some(cluster) = self.cluster.take() {
            cluster.shutdown();
        }
        Ok(())
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
