//! The unified error type of the `Cluster` facade.
//!
//! Before this crate, every driving surface failed differently:
//! `SimCluster::run_round` returned `SimError`, `LocalCluster::spawn`
//! returned `io::Result`, and `recv_delivery` signalled both "dead
//! server" and "timed out" as `None`. [`ClusterError`] folds all of that
//! into one typed enum so scenario code can match on *what went wrong*
//! regardless of the backend.

use allconcur_core::{Round, ServerId};
use allconcur_sim::harness::SimError;
use std::time::Duration;

/// Everything that can go wrong driving a cluster through the facade.
#[derive(Debug)]
pub enum ClusterError {
    /// The server id is outside the current configuration.
    UnknownServer(ServerId),
    /// The server exists but has crashed / been shut down.
    ServerDown(ServerId),
    /// The protocol cannot make progress: the deployment lost liveness
    /// (e.g. more than `k(G) − 1` failures, or a disconnected overlay).
    Stalled {
        /// The round that failed to complete, when known.
        round: Option<Round>,
        /// Servers that had not delivered, when known.
        missing: Vec<ServerId>,
    },
    /// No delivery arrived within the waiting budget. For the simulated
    /// transport the budget is interpreted in simulated time, for the TCP
    /// transport in wall-clock time.
    Timeout {
        /// The budget that elapsed.
        waited: Duration,
    },
    /// The deployment is saturated and shed the operation instead of
    /// queueing it unboundedly: the submit path's admission control
    /// (round window + WAL group-commit backlog) or the transport's
    /// bounded input queue refused the payload. The operation had **no
    /// effect** — retry after `retry_after` (graceful degradation,
    /// never OOM).
    Busy {
        /// Suggested pause before retrying.
        retry_after: Duration,
    },
    /// Transport-level I/O failure (TCP backend).
    Io(std::io::Error),
    /// The cluster was already shut down.
    ShutDown,
    /// The operation is not supported by this transport.
    Unsupported(&'static str),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::UnknownServer(id) => write!(f, "unknown server {id}"),
            ClusterError::ServerDown(id) => write!(f, "server {id} is down"),
            ClusterError::Stalled { round, missing } => match round {
                Some(r) => {
                    write!(f, "round {r} stalled; servers {missing:?} never delivered")
                }
                None => write!(f, "cluster stalled; servers {missing:?} never delivered"),
            },
            ClusterError::Timeout { waited } => {
                write!(f, "no delivery within {waited:?}")
            }
            ClusterError::Busy { retry_after } => {
                write!(f, "cluster saturated; retry after {retry_after:?}")
            }
            ClusterError::Io(e) => write!(f, "transport I/O error: {e}"),
            ClusterError::ShutDown => write!(f, "cluster already shut down"),
            ClusterError::Unsupported(what) => {
                write!(f, "operation not supported by this transport: {what}")
            }
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClusterError {
    fn from(e: std::io::Error) -> Self {
        ClusterError::Io(e)
    }
}

impl From<SimError> for ClusterError {
    fn from(e: SimError) -> Self {
        match e {
            SimError::Stalled { missing, round } => {
                ClusterError::Stalled { round: Some(round), missing }
            }
            // `deadline` is an *absolute* simulated instant, not an
            // elapsed budget; it is the closest value available. (The
            // facade's own polling never takes this path — it converts
            // deadline misses to `Ok(None)` and reports the caller's
            // real budget — so this only affects direct SimError
            // conversions in user code.)
            SimError::DeadlineExceeded { deadline } => {
                ClusterError::Timeout { waited: Duration::from_nanos(deadline.as_ns()) }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_error_conversion() {
        let e: ClusterError = SimError::Stalled { missing: vec![1, 2], round: 4 }.into();
        assert!(matches!(e, ClusterError::Stalled { round: Some(4), .. }));
        assert_eq!(e.to_string(), "round 4 stalled; servers [1, 2] never delivered");
    }
}
