//! The [`Transport`] abstraction: one driving contract implemented by
//! the discrete-event simulator and the TCP runtime.
//!
//! A transport owns a full deployment (`n` protocol state machines plus
//! whatever carries their messages) and exposes exactly the operations
//! the facade needs: submit a payload, pull the next delivery, and the
//! lifecycle controls (crash, suspect, reconfigure, shutdown). Scenario
//! code never touches a transport directly — it drives a
//! [`crate::Cluster`], which works identically over either
//! implementation; that is the paper's central "same algorithm,
//! analytically / simulated / deployed" claim turned into an API.

use crate::error::ClusterError;
use allconcur_core::delivery::Delivery;
use allconcur_core::ServerId;
use allconcur_graph::Digraph;
use bytes::Bytes;
use std::any::Any;
use std::time::Duration;

/// A runtime fault-injection command — the nemesis surface of the
/// facade.
///
/// The simulated backend supports every command; the TCP backend
/// supports per-link send-drop ([`FaultCommand::Drop`], applied in the
/// runtime's writer path) and the blanket clears, and reports the rest
/// as [`ClusterError::Unsupported`]. Crashes and restarts are not fault
/// commands: crash through [`crate::Cluster::crash`], restart/rejoin
/// through the reconfiguration path (snapshot catch-up in the `Service`
/// layer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultCommand {
    /// Symmetric partition: block both directions of every link between
    /// servers of *different* groups. Blocked links hold messages and
    /// release them, per-link FIFO, at [`FaultCommand::HealPartitions`]
    /// — a partition delays, it does not destroy (sim only).
    Partition {
        /// The connectivity groups (list every member for a tight
        /// partition; unlisted servers are unaffected).
        groups: Vec<Vec<ServerId>>,
    },
    /// Asymmetric partition: block the single directed link `from → to`
    /// (sim only).
    Isolate {
        /// Sending side of the blocked link.
        from: ServerId,
        /// Receiving side of the blocked link.
        to: ServerId,
    },
    /// Unblock every blocked link and release held messages. A no-op on
    /// backends that cannot partition, so scenario teardown can heal
    /// unconditionally.
    HealPartitions,
    /// Drop each message on `from → to` independently with probability
    /// `ppm / 1e6`; `ppm = 0` clears the fault. Supported by both
    /// backends — loss is genuinely loss (no retransmission in the
    /// protocol); survivability comes from the overlay's redundant
    /// dissemination paths.
    Drop {
        /// Sending side.
        from: ServerId,
        /// Receiving side.
        to: ServerId,
        /// Drop probability in parts-per-million (≤ 1 000 000).
        ppm: u32,
    },
    /// Flip one bit per sampled message on `from → to` with probability
    /// `ppm / 1e6`; `ppm = 0` clears the fault. Supported by both
    /// backends, with end-to-end integrity as the contract: a flip is
    /// **detected, never delivered**. On TCP the sender's writer
    /// corrupts a copy of the sampled frame (header bytes included) and
    /// the receiver's CRC32 rejects it as a counted link fault; on sim
    /// the typed message collapses to that post-detection outcome — it
    /// is destroyed and counted, exactly as the CRC-discarded frame
    /// would be. Survivability comes from the overlay's redundant
    /// dissemination paths, as for [`FaultCommand::Drop`].
    BitFlip {
        /// Sending side.
        from: ServerId,
        /// Receiving side.
        to: ServerId,
        /// Corruption probability in parts-per-million (≤ 1 000 000).
        ppm: u32,
    },
    /// Add `extra` latency to every message on `from → to` — a delay
    /// spike (sim only).
    Delay {
        /// Sending side.
        from: ServerId,
        /// Receiving side.
        to: ServerId,
        /// Additional per-message latency.
        extra: Duration,
    },
    /// Hold the next `burst` messages on `from → to` and release them
    /// in reverse order (sim only).
    Reorder {
        /// Sending side.
        from: ServerId,
        /// Receiving side.
        to: ServerId,
        /// Messages to collect before the reversed release.
        burst: usize,
    },
    /// Sever the directed link `from → to` and hold it down until
    /// [`FaultCommand::LinkUp`]. On TCP the sender's writer closes (a
    /// flush first makes an under-grace outage lossless) and outbound
    /// frames buffer in the bounded Degraded queue; on sim the link
    /// blocks and holds messages like an [`FaultCommand::Isolate`].
    LinkDown {
        /// Sending side of the severed link.
        from: ServerId,
        /// Receiving side of the severed link.
        to: ServerId,
    },
    /// Sever `from → to` for `down_for`, then auto-heal: the transient
    /// link-flap fault of the resilience layer. An outage shorter than
    /// the TCP runtime's `link_grace` heals with zero membership
    /// removals and zero protocol-visible loss (the Degraded queue
    /// replays on reconnect).
    LinkFlap {
        /// Sending side of the flapped link.
        from: ServerId,
        /// Receiving side of the flapped link.
        to: ServerId,
        /// Outage duration before the auto-heal.
        down_for: Duration,
    },
    /// Heal a link severed by [`FaultCommand::LinkDown`] (or an
    /// in-progress flap) and release/replay everything held on it.
    LinkUp {
        /// Sending side of the healed link.
        from: ServerId,
        /// Receiving side of the healed link.
        to: ServerId,
    },
    /// Remove every link fault and release everything held. Supported by
    /// both backends (on TCP it clears the send-drop table and heals
    /// held-down links).
    ClearLinkFaults,
}

/// A backend able to run an AllConcur deployment.
///
/// Implementations must preserve the protocol's per-server delivery
/// order: successive deliveries reported for one server are exactly that
/// server's A-delivery sequence. The interleaving *between* servers is
/// unspecified (the simulator orders by virtual time, TCP by arrival).
pub trait Transport {
    /// Human-readable backend name (`"sim"`, `"tcp"`, ...).
    fn name(&self) -> &'static str;

    /// Number of configured servers (alive or not).
    fn n(&self) -> usize;

    /// Whether `id` is currently live (transport-level knowledge).
    fn is_live(&self, id: ServerId) -> bool;

    /// Queue `payload` as `origin`'s message for its next open round.
    ///
    /// Submissions beyond the current round are buffered and ride in
    /// later rounds — the paper's request-batching flow (§5). Submitting
    /// to a dead server is an error.
    fn submit(&mut self, origin: ServerId, payload: Bytes) -> Result<(), ClusterError>;

    /// Drive the deployment until some server A-delivers a round, and
    /// return that delivery. `Ok(None)` when no delivery arrived within
    /// `timeout` — simulated time for the sim backend, wall-clock for
    /// TCP.
    fn poll_delivery(
        &mut self,
        timeout: Duration,
    ) -> Result<Option<(ServerId, Delivery)>, ClusterError>;

    /// Fail-stop `id` right now. Peers detect the crash through the
    /// backend's failure detector.
    fn crash(&mut self, id: ServerId) -> Result<(), ClusterError>;

    /// Inject a (possibly false) failure suspicion at server `at`
    /// against `suspected`, as if `at`'s local FD had raised it.
    fn suspect(&mut self, at: ServerId, suspected: ServerId) -> Result<(), ClusterError>;

    /// Inject a link-level fault (partition, loss, delay, reorder) or
    /// heal/clear one. Unsupported commands return
    /// [`ClusterError::Unsupported`] and leave the deployment untouched.
    ///
    /// Backend support matrix:
    ///
    /// | [`FaultCommand`]   | sim | tcp |
    /// |--------------------|-----|-----|
    /// | `Partition`        | yes | `Unsupported` |
    /// | `Isolate`          | yes | `Unsupported` |
    /// | `HealPartitions`   | yes | yes (no-op)   |
    /// | `Drop`             | yes | yes           |
    /// | `BitFlip`          | yes | yes           |
    /// | `Delay`            | yes | `Unsupported` |
    /// | `Reorder`          | yes | `Unsupported` |
    /// | `LinkDown`         | yes | yes           |
    /// | `LinkFlap`         | yes | yes           |
    /// | `LinkUp`           | yes | yes           |
    /// | `ClearLinkFaults`  | yes | yes           |
    ///
    /// The sim backend owns virtual time and every queued message, so it
    /// implements the full vocabulary. TCP can only decide per send
    /// whether to hand a frame to the kernel — probabilistic `Drop`,
    /// the link-lifecycle commands (`LinkDown` / `LinkFlap` / `LinkUp`,
    /// applied in the runtime's per-link state machine), and the
    /// blanket clears (`HealPartitions` heals no partitions but
    /// succeeds, so scenario teardown works unchanged on both
    /// backends). Anything that would require holding or re-timing
    /// in-flight kernel buffers reports `Unsupported` rather than
    /// pretending.
    fn inject_fault(&mut self, fault: &FaultCommand) -> Result<(), ClusterError>;

    /// Set every server's round-pipelining window: how many consecutive
    /// rounds may be in flight concurrently (clamped to ≥ 1; 1 =
    /// sequential rounds). Survives [`Transport::reconfigure`].
    fn set_round_window(&mut self, window: usize) -> Result<(), ClusterError>;

    /// Move the deployment to a fresh overlay — the agreed
    /// reconfiguration of §3 ("dynamic membership"): surviving members
    /// plus joiners restart on `graph`, with server ids renumbered to its
    /// vertices and rounds restarting from zero.
    fn reconfigure(&mut self, graph: Digraph) -> Result<(), ClusterError>;

    /// Graceful shutdown of every remaining server. Idempotent.
    fn shutdown(&mut self) -> Result<(), ClusterError>;

    /// Escape hatch for backend-specific instrumentation (e.g. the
    /// simulator's latency and traffic counters).
    fn as_any_mut(&mut self) -> &mut dyn Any;
}
