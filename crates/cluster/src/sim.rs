//! [`SimTransport`] — the discrete-event simulator behind the
//! [`crate::Transport`] contract.
//!
//! Wraps an [`allconcur_sim::SimCluster`] and drives it incrementally:
//! submissions become `AppBroadcast` events, and `poll_delivery` runs
//! the event loop until the next `A-deliver`. A per-server pending queue
//! mirrors the TCP runtime's: the protocol sends exactly one message per
//! server per round, so extra submissions wait for the round to advance
//! (the paper's request-batching flow, §5).

use crate::error::ClusterError;
use crate::transport::{FaultCommand, Transport};
use allconcur_core::config::FdMode;
use allconcur_core::delivery::Delivery;
use allconcur_core::ServerId;
use allconcur_graph::Digraph;
use allconcur_sim::fault::FaultCmd;
use allconcur_sim::harness::SimCluster;
use allconcur_sim::network::NetworkModel;
use allconcur_sim::time::SimTime;
use bytes::Bytes;
use std::time::Duration;

/// Construction knobs for [`SimTransport`], remembered across
/// [`Transport::reconfigure`] so the rebuilt deployment keeps the same
/// network profile, FD settings, and seed lineage.
#[derive(Debug, Clone, Copy)]
pub struct SimOptions {
    /// Simulated network parameters (default: the paper's TCP cluster).
    pub network: NetworkModel,
    /// Failure-detector mode (default: perfect).
    pub fd_mode: FdMode,
    /// Detection delay `Δ_to` between a crash and its successors'
    /// suspicions (default 100 ms — the paper's Fig. 7 setting).
    pub fd_delay: SimTime,
    /// RNG seed for jitter.
    pub seed: u64,
    /// Per-round simulated-time budget.
    pub round_deadline: SimTime,
    /// Simulated pause charged on reconfiguration (§5 reports ≈80 ms of
    /// unavailability per join while connections are established).
    pub reconfigure_pause: SimTime,
    /// Round-pipelining window `W` (default 1 — sequential rounds).
    pub round_window: usize,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            network: NetworkModel::tcp_cluster(),
            fd_mode: FdMode::Perfect,
            fd_delay: SimTime::from_ms(100),
            seed: 0,
            round_deadline: SimTime::from_secs(600),
            reconfigure_pause: SimTime::from_ms(80),
            round_window: 1,
        }
    }
}

impl SimOptions {
    fn build(&self, graph: Digraph, start_clock: SimTime) -> SimCluster {
        SimCluster::builder(graph)
            .network(self.network)
            .fd_mode(self.fd_mode)
            .fd_detection_delay(self.fd_delay)
            .seed(self.seed)
            .round_deadline(self.round_deadline)
            .start_clock(start_clock)
            .round_window(self.round_window)
            .build()
    }
}

/// The simulated backend of the `Cluster` facade.
pub struct SimTransport {
    cluster: SimCluster,
    opts: SimOptions,
    down: bool,
}

impl SimTransport {
    /// A fresh simulated deployment over `graph`.
    pub fn new(graph: Digraph, opts: SimOptions) -> SimTransport {
        let cluster = opts.build(graph, SimTime::ZERO);
        SimTransport { cluster, opts, down: false }
    }

    /// The wrapped simulator, for instrumentation (latency, traffic and
    /// space counters, failure scripting).
    pub fn cluster(&self) -> &SimCluster {
        &self.cluster
    }

    /// Mutable access to the wrapped simulator.
    ///
    /// Lockstep helpers like `SimCluster::run_round` clear the
    /// incremental delivery log; mixing them with facade-driven rounds
    /// in the same scenario is not supported.
    pub fn cluster_mut(&mut self) -> &mut SimCluster {
        &mut self.cluster
    }

    fn check_id(&self, id: ServerId) -> Result<(), ClusterError> {
        if self.down {
            return Err(ClusterError::ShutDown);
        }
        if (id as usize) >= self.cluster.n() {
            return Err(ClusterError::UnknownServer(id));
        }
        Ok(())
    }
}

impl Transport for SimTransport {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn n(&self) -> usize {
        self.cluster.n()
    }

    fn is_live(&self, id: ServerId) -> bool {
        !self.down && (id as usize) < self.cluster.n() && !self.cluster.is_crashed(id)
    }

    fn submit(&mut self, origin: ServerId, payload: Bytes) -> Result<(), ClusterError> {
        self.check_id(origin)?;
        if self.cluster.is_crashed(origin) {
            return Err(ClusterError::ServerDown(origin));
        }
        // Round discipline lives in the state machine: a submission
        // beyond the current round queues inside the server and opens a
        // later round by itself.
        self.cluster.submit(origin, payload);
        Ok(())
    }

    fn poll_delivery(
        &mut self,
        timeout: Duration,
    ) -> Result<Option<(ServerId, Delivery)>, ClusterError> {
        if self.down {
            return Err(ClusterError::ShutDown);
        }
        // Saturate: huge timeouts (e.g. Duration::MAX) must not overflow
        // the simulated clock.
        let clock = self.cluster.clock();
        let budget_ns = timeout.as_nanos().min((u64::MAX - clock.as_ns()) as u128) as u64;
        let deadline = clock + SimTime::from_ns(budget_ns);
        match self.cluster.step_until_delivery(deadline) {
            Ok(Some(next)) => Ok(Some(next)),
            Ok(None) => {
                // Queue drained. A live server with its round's message
                // out but no delivery is waiting for messages that can
                // never arrive — the deployment lost liveness (e.g. more
                // than k(G)−1 crashes disconnected the overlay). Plain
                // idleness (no open rounds) is an ordinary timeout, and
                // so is a deployment whose messages sit parked behind a
                // partition: those arrive at the heal, not never.
                if self.cluster.faults_holding() {
                    return Ok(None);
                }
                let missing: Vec<ServerId> = (0..self.cluster.n() as ServerId)
                    .filter(|&id| {
                        !self.cluster.is_crashed(id) && self.cluster.server(id).has_broadcast()
                    })
                    .collect();
                if missing.is_empty() {
                    Ok(None)
                } else {
                    let round = self.cluster.server(missing[0]).round();
                    Err(ClusterError::Stalled { round: Some(round), missing })
                }
            }
            Err(allconcur_sim::harness::SimError::DeadlineExceeded { .. }) => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn crash(&mut self, id: ServerId) -> Result<(), ClusterError> {
        self.check_id(id)?;
        if self.cluster.is_crashed(id) {
            return Err(ClusterError::ServerDown(id));
        }
        self.cluster.schedule_crash(self.cluster.clock(), id);
        // Apply the crash (and anything else due now) immediately, so
        // `is_live` reflects it as soon as the call returns.
        self.cluster.settle(self.cluster.clock());
        Ok(())
    }

    fn suspect(&mut self, at: ServerId, suspected: ServerId) -> Result<(), ClusterError> {
        self.check_id(at)?;
        self.check_id(suspected)?;
        self.cluster.schedule_suspicion(self.cluster.clock(), at, suspected);
        Ok(())
    }

    fn inject_fault(&mut self, fault: &FaultCommand) -> Result<(), ClusterError> {
        if self.down {
            return Err(ClusterError::ShutDown);
        }
        let cmd = match fault {
            FaultCommand::Partition { groups } => {
                for &id in groups.iter().flatten() {
                    self.check_id(id)?;
                }
                FaultCmd::Partition { groups: groups.clone() }
            }
            FaultCommand::Isolate { from, to } => {
                self.check_id(*from)?;
                self.check_id(*to)?;
                FaultCmd::Isolate { from: *from, to: *to }
            }
            FaultCommand::HealPartitions => FaultCmd::HealPartitions,
            FaultCommand::Drop { from, to, ppm } => {
                self.check_id(*from)?;
                self.check_id(*to)?;
                FaultCmd::Drop { from: *from, to: *to, ppm: *ppm }
            }
            FaultCommand::BitFlip { from, to, ppm } => {
                self.check_id(*from)?;
                self.check_id(*to)?;
                FaultCmd::BitFlip { from: *from, to: *to, ppm: *ppm }
            }
            FaultCommand::Delay { from, to, extra } => {
                self.check_id(*from)?;
                self.check_id(*to)?;
                let extra = SimTime::from_ns(extra.as_nanos().min(u64::MAX as u128) as u64);
                FaultCmd::Delay { from: *from, to: *to, extra }
            }
            FaultCommand::Reorder { from, to, burst } => {
                self.check_id(*from)?;
                self.check_id(*to)?;
                FaultCmd::Reorder { from: *from, to: *to, burst: *burst }
            }
            // Link lifecycle: in the simulator a downed link is a held
            // (never lossy) directed block, exactly an `Isolate`; the
            // heal releases the hold FIFO. A flap is the pair, with the
            // heal scheduled `down_for` of simulated time ahead.
            FaultCommand::LinkDown { from, to } => {
                self.check_id(*from)?;
                self.check_id(*to)?;
                FaultCmd::Isolate { from: *from, to: *to }
            }
            FaultCommand::LinkUp { from, to } => {
                self.check_id(*from)?;
                self.check_id(*to)?;
                FaultCmd::HealLink { from: *from, to: *to }
            }
            FaultCommand::LinkFlap { from, to, down_for } => {
                self.check_id(*from)?;
                self.check_id(*to)?;
                let down_ns = SimTime::from_ns(down_for.as_nanos().min(u64::MAX as u128) as u64);
                self.cluster.schedule_fault(
                    self.cluster.clock() + down_ns,
                    FaultCmd::HealLink { from: *from, to: *to },
                );
                FaultCmd::Isolate { from: *from, to: *to }
            }
            FaultCommand::ClearLinkFaults => FaultCmd::Clear,
        };
        self.cluster.inject_fault(&cmd);
        Ok(())
    }

    fn set_round_window(&mut self, window: usize) -> Result<(), ClusterError> {
        if self.down {
            return Err(ClusterError::ShutDown);
        }
        // Remembered in the options so reconfiguration keeps the window.
        self.opts.round_window = window.max(1);
        self.cluster.set_round_window(window.max(1));
        Ok(())
    }

    fn reconfigure(&mut self, graph: Digraph) -> Result<(), ClusterError> {
        if self.down {
            return Err(ClusterError::ShutDown);
        }
        let resume = self.cluster.clock() + self.opts.reconfigure_pause;
        self.opts.seed = self.opts.seed.wrapping_add(1);
        self.cluster = self.opts.build(graph, resume);
        Ok(())
    }

    fn shutdown(&mut self) -> Result<(), ClusterError> {
        self.down = true;
        Ok(())
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
