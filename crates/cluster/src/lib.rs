#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # allconcur-cluster — one submit/deliver API over every transport
//!
//! The paper's central claim is that the *same* leaderless round
//! protocol runs unchanged whether analysed, simulated, or deployed over
//! real sockets (§4–§5). This crate turns that claim into an API: a
//! [`Transport`] contract implemented by the discrete-event simulator
//! ([`sim::SimTransport`]) and the TCP runtime ([`tcp::TcpTransport`]),
//! and a [`Cluster`] facade that scenario code drives without knowing
//! which backend is underneath.
//!
//! * submit: [`Cluster::submit`] queues a payload through one server and
//!   returns a [`SubmitHandle`]; payloads ride one per server per round,
//!   extras batch into later rounds (§5);
//! * deliver: [`Cluster::recv_delivery`] / [`Cluster::next_delivery`] /
//!   [`Cluster::deliveries`] pull [`Delivery`] values — the per-server
//!   A-delivery sequences every correct server agrees on;
//! * lifecycle: [`Cluster::crash`], [`Cluster::suspect`],
//!   [`Cluster::reconfigure`], [`Cluster::shutdown`];
//! * errors: every failure is a typed [`ClusterError`] instead of the
//!   old mix of `Option`, `io::Result`, and `SimError`.
//!
//! Because both transports preserve per-server delivery order and the
//! protocol's delivery order is deterministic, a scripted scenario
//! produces byte-identical delivery sequences on both backends — the
//! cross-backend parity test in the umbrella crate pins this down.

pub mod error;
pub mod facade;
pub mod sim;
pub mod tcp;
pub mod transport;

pub use allconcur_core::delivery::Delivery;
pub use error::ClusterError;
pub use facade::{Cluster, Deliveries, SubmitHandle};
pub use sim::{SimOptions, SimTransport};
pub use tcp::TcpTransport;
pub use transport::{FaultCommand, Transport};

#[cfg(test)]
mod tests {
    use super::*;
    use allconcur_graph::gs::gs_digraph;
    use allconcur_graph::standard::complete_digraph;
    use bytes::Bytes;
    use std::time::Duration;

    const TIMEOUT: Duration = Duration::from_secs(20);

    fn payloads(n: usize) -> Vec<Bytes> {
        (0..n).map(|i| Bytes::from(format!("msg-{i}").into_bytes())).collect()
    }

    fn drive_round(mut cluster: Cluster) {
        let n = cluster.n();
        let round = cluster.run_round(&payloads(n), TIMEOUT).unwrap();
        assert_eq!(round.len(), n);
        let reference = &round[&0];
        assert_eq!(reference.messages.len(), n);
        for (id, delivery) in &round {
            assert_eq!(delivery.round, 0);
            assert_eq!(
                delivery.messages, reference.messages,
                "total order violated at server {id}"
            );
        }
        cluster.shutdown().unwrap();
    }

    #[test]
    fn sim_round_through_facade() {
        drive_round(Cluster::sim(gs_digraph(8, 3).unwrap()));
    }

    #[test]
    fn tcp_round_through_facade() {
        drive_round(Cluster::tcp(complete_digraph(4)).unwrap());
    }

    #[test]
    fn submit_handles_resolve() {
        let mut cluster = Cluster::sim(gs_digraph(8, 3).unwrap());
        let handle = cluster.submit(3, Bytes::from_static(b"tracked")).unwrap();
        assert_eq!(handle.origin(), 3);
        for id in 0..8 {
            if id != 3 {
                cluster.submit(id, Bytes::new()).unwrap();
            }
        }
        let delivery = cluster.wait_delivered(&handle, TIMEOUT).unwrap();
        assert_eq!(delivery.payload_of(3), Some(&Bytes::from_static(b"tracked")));
        // Not consumed: the origin's stream still yields the delivery.
        let again = cluster.recv_delivery(3, TIMEOUT).unwrap();
        assert_eq!(again, delivery);
    }

    #[test]
    fn pipelined_submissions_batch_into_later_rounds() {
        let mut cluster = Cluster::sim(gs_digraph(8, 3).unwrap());
        // Three payloads through server 0 up front: they must arrive in
        // rounds 0, 1, 2 in submission order.
        for tag in [b"first".as_slice(), b"second", b"third"] {
            cluster.submit(0, Bytes::copy_from_slice(tag)).unwrap();
        }
        for round in 0..3u64 {
            for id in 1..8 {
                cluster.submit(id, Bytes::new()).unwrap();
            }
            let delivery = cluster.recv_delivery(0, TIMEOUT).unwrap();
            assert_eq!(delivery.round, round);
            let expected: &[u8] = [b"first".as_slice(), b"second", b"third"][round as usize];
            assert_eq!(delivery.payload_of(0).unwrap().as_ref(), expected);
        }
    }

    #[test]
    fn crash_is_detected_and_excluded() {
        let mut cluster = Cluster::sim_with(
            gs_digraph(8, 3).unwrap(),
            SimOptions { fd_delay: allconcur_sim::SimTime::from_us(50), ..SimOptions::default() },
        );
        cluster.crash(5).unwrap();
        assert!(!cluster.is_live(5));
        assert_eq!(cluster.live_servers().len(), 7);
        let round = cluster.run_round(&payloads(8), TIMEOUT).unwrap();
        assert_eq!(round.len(), 7);
        for delivery in round.values() {
            assert!(!delivery.origins().contains(&5), "dead server's message delivered");
        }
        // Submitting through the dead server is a typed error.
        match cluster.submit(5, Bytes::new()) {
            Err(ClusterError::ServerDown(5)) => {}
            other => panic!("expected ServerDown(5), got {other:?}"),
        }
    }

    #[test]
    fn unknown_server_is_a_typed_error() {
        let mut cluster = Cluster::sim(gs_digraph(8, 3).unwrap());
        match cluster.submit(99, Bytes::new()) {
            Err(ClusterError::UnknownServer(99)) => {}
            other => panic!("expected UnknownServer(99), got {other:?}"),
        }
    }

    #[test]
    fn timeout_when_nothing_submitted() {
        let mut cluster = Cluster::sim(gs_digraph(8, 3).unwrap());
        match cluster.recv_delivery(0, Duration::from_millis(5)) {
            Err(ClusterError::Timeout { .. }) => {}
            other => panic!("expected Timeout, got {other:?}"),
        }
    }

    #[test]
    fn reconfigure_restarts_on_fresh_overlay() {
        let mut cluster = Cluster::sim(gs_digraph(8, 3).unwrap());
        let round = cluster.run_round(&payloads(8), TIMEOUT).unwrap();
        assert_eq!(round.len(), 8);
        cluster.reconfigure(gs_digraph(10, 3).unwrap()).unwrap();
        assert_eq!(cluster.n(), 10);
        let round = cluster.run_round(&payloads(10), TIMEOUT).unwrap();
        assert_eq!(round.len(), 10);
        for delivery in round.values() {
            assert_eq!(delivery.round, 0, "rounds restart on the new configuration");
            assert_eq!(delivery.messages.len(), 10);
        }
    }

    #[test]
    fn deliveries_iterator_streams_rounds() {
        let mut cluster = Cluster::sim(gs_digraph(8, 3).unwrap());
        for _ in 0..3 {
            for id in 0..8 {
                cluster.submit(id, Bytes::from_static(b"x")).unwrap();
            }
        }
        let rounds: Vec<u64> =
            cluster.deliveries(2, Duration::from_millis(50)).map(|d| d.round).collect();
        assert_eq!(rounds, vec![0, 1, 2]);
    }

    #[test]
    fn waiting_on_dead_server_fails_fast() {
        let mut cluster = Cluster::sim(gs_digraph(8, 3).unwrap());
        cluster.crash(2).unwrap();
        let t0 = std::time::Instant::now();
        match cluster.recv_delivery(2, Duration::from_secs(30)) {
            Err(ClusterError::ServerDown(2)) => {}
            other => panic!("expected ServerDown(2), got {other:?}"),
        }
        assert!(t0.elapsed() < Duration::from_secs(5), "must not burn the 30s budget");
        // Same through a submit handle (submitted before the crash, but
        // the round can no longer complete).
        let mut cluster = Cluster::sim(gs_digraph(8, 3).unwrap());
        let handle = cluster.submit(2, Bytes::from_static(b"doomed")).unwrap();
        cluster.crash(2).unwrap();
        match cluster.wait_delivered(&handle, Duration::from_secs(30)) {
            Err(ClusterError::ServerDown(2)) => {}
            other => panic!("expected ServerDown(2), got {other:?}"),
        }
    }

    #[test]
    fn lost_liveness_reports_stalled() {
        // A ring has k = 1: one crash disconnects the overlay, so the
        // survivors' round can never complete. The facade must say
        // Stalled (with diagnostics), not a fabricated Timeout.
        let mut cluster = Cluster::sim(allconcur_graph::standard::ring_digraph(4));
        cluster.crash(2).unwrap();
        for id in [0u32, 1, 3] {
            cluster.submit(id, Bytes::from_static(b"doomed-round")).unwrap();
        }
        match cluster.recv_delivery(0, Duration::from_secs(60)) {
            Err(ClusterError::Stalled { round: Some(0), missing }) => {
                assert!(!missing.is_empty());
            }
            other => panic!("expected Stalled, got {other:?}"),
        }
    }

    #[test]
    fn inbox_cap_bounds_buffered_deliveries() {
        let mut cluster = Cluster::sim(gs_digraph(8, 3).unwrap());
        cluster.set_inbox_cap(Some(2));
        for _ in 0..5 {
            for id in 0..8 {
                cluster.submit(id, Bytes::from_static(b"r")).unwrap();
            }
        }
        // Stream only server 0; the other servers' buffers stay capped.
        let got: Vec<u64> =
            cluster.deliveries(0, Duration::from_millis(50)).map(|d| d.round).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert!(cluster.dropped_deliveries(5) >= 3, "5 rounds - cap 2 dropped");
        // The capped server still serves its newest buffered rounds.
        let d = cluster.recv_delivery(5, Duration::from_millis(50)).unwrap();
        assert_eq!(d.round, 3);
    }

    #[test]
    fn stream_error_surfaces_abnormal_end() {
        let mut cluster = Cluster::sim(gs_digraph(8, 3).unwrap());
        cluster.transport_mut().shutdown().unwrap();
        let drained: Vec<Delivery> = cluster.deliveries(0, Duration::from_millis(5)).collect();
        assert!(drained.is_empty());
        match cluster.take_stream_error() {
            Some(ClusterError::ShutDown) => {}
            other => panic!("expected ShutDown stream error, got {other:?}"),
        }
        // Taken once: subsequent reads see nothing.
        assert!(cluster.take_stream_error().is_none());
    }

    #[test]
    fn tcp_crash_through_facade() {
        let mut cluster = Cluster::tcp(gs_digraph(8, 3).unwrap()).unwrap();
        let r0 = cluster.run_round(&payloads(8), TIMEOUT).unwrap();
        assert_eq!(r0.len(), 8);
        cluster.crash(6).unwrap();
        assert!(!cluster.is_live(6));
        let r1 = cluster.run_round(&payloads(8), TIMEOUT).unwrap();
        assert_eq!(r1.len(), 7);
        let reference = &r1[&0];
        for (id, delivery) in &r1 {
            assert!(!delivery.origins().contains(&6), "dead origin at {id}");
            assert_eq!(&delivery.messages, &reference.messages);
        }
        cluster.shutdown().unwrap();
    }
}
