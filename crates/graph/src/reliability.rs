//! AllConcur's reliability model (§4.4, Fig. 5, Table 3).
//!
//! A server fails over a window `Δ` with probability
//! `p_f = 1 − e^{−Δ/MTTF}` (exponential lifetime, §4.2.2). AllConcur with
//! an overlay of connectivity `k` survives while fewer than `k` servers
//! fail, so its reliability is the binomial head
//!
//! ```text
//! ρ_G = Σ_{i=0}^{k−1} C(n,i) · p_f^i · (1 − p_f)^{n−i}
//! ```
//!
//! reported in *nines*, `−log₁₀(1 − ρ_G)`. All sums run in log space: at
//! `n = 2¹⁵` and 6-nines targets, the head is within ~1e−7 of 1 and direct
//! summation would lose every significant digit of `1 − ρ_G`, so we sum
//! the *tail* `Σ_{i≥k}` instead.

/// Reliability model parameters. Defaults follow the paper's evaluation:
/// `Δ = 24h` and `MTTF ≈ 2 years` (TSUBAME2.5 failure history).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliabilityModel {
    /// Probability that one server fails during the window of interest.
    pub p_f: f64,
}

impl ReliabilityModel {
    /// From an observation window and a mean time to failure, both in
    /// hours: `p_f = 1 − e^{−Δ/MTTF}`.
    pub fn from_mttf(delta_hours: f64, mttf_hours: f64) -> Self {
        assert!(delta_hours >= 0.0 && mttf_hours > 0.0);
        // exp_m1 keeps precision for tiny Δ/MTTF.
        ReliabilityModel { p_f: -(-delta_hours / mttf_hours).exp_m1() }
    }

    /// The paper's setting: 24-hour window, 2-year MTTF.
    pub fn paper_default() -> Self {
        Self::from_mttf(24.0, 2.0 * 365.0 * 24.0)
    }

    /// Probability that `k` or more of `n` servers fail in the window —
    /// the *unreliability* `1 − ρ_G` of a connectivity-`k` overlay.
    pub fn unreliability(&self, n: usize, k: usize) -> f64 {
        binomial_tail(n, k, self.p_f)
    }

    /// `ρ_G` for an overlay with `n` vertices and connectivity `k`.
    pub fn reliability(&self, n: usize, k: usize) -> f64 {
        1.0 - self.unreliability(n, k)
    }

    /// Reliability expressed in nines: `−log₁₀(1 − ρ_G)`. Fig. 5's y-axis.
    pub fn nines(&self, n: usize, k: usize) -> f64 {
        let u = self.unreliability(n, k);
        if u <= 0.0 {
            f64::INFINITY
        } else {
            -u.log10()
        }
    }
}

/// `P[X ≥ k]` for `X ~ Binomial(n, p)`, summed in log space from the first
/// tail term (terms decay geometrically for `k ≫ np`, so a few hundred
/// terms at most contribute).
pub fn binomial_tail(n: usize, k: usize, p: f64) -> f64 {
    if k == 0 {
        return 1.0;
    }
    if k > n || p <= 0.0 {
        return 0.0;
    }
    if p >= 1.0 {
        return 1.0;
    }
    let ln_p = p.ln();
    let ln_q = (-p).ln_1p();
    // ln C(n,k) via the log-gamma identity.
    let mut ln_term = ln_choose(n, k) + k as f64 * ln_p + (n - k) as f64 * ln_q;
    let mut total = 0.0f64;
    for i in k..=n {
        total += ln_term.exp();
        if i < n {
            // C(n,i+1)/C(n,i) = (n−i)/(i+1); fold in p/q.
            ln_term += ((n - i) as f64 / (i + 1) as f64).ln() + ln_p - ln_q;
            if ln_term < total.ln() - 40.0 {
                break; // remaining terms below 1 ulp of the running sum
            }
        }
    }
    total.min(1.0)
}

/// `ln C(n, k)` via Stirling-stable log-factorials.
pub fn ln_choose(n: usize, k: usize) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// `ln(n!)`: exact summation below 256, Stirling series above.
fn ln_factorial(n: usize) -> f64 {
    if n < 256 {
        (2..=n).map(|i| (i as f64).ln()).sum()
    } else {
        let x = n as f64 + 1.0;
        // Stirling: ln Γ(x) ≈ (x−½)ln x − x + ½ln 2π + 1/(12x) − 1/(360x³)
        (x - 0.5) * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI).ln() + 1.0 / (12.0 * x)
            - 1.0 / (360.0 * x * x * x)
    }
}

/// Tolerance on the nines target when fitting a degree. Table 3 of the
/// paper lists GS(128,5) for a 6-nines target although the model yields
/// 5.96 nines exactly — the authors evidently rounded to the nearest
/// tenth of a nine; we match that rounding.
pub const NINES_TOLERANCE: f64 = 0.05;

/// Smallest degree `d` (and therefore connectivity, since GS digraphs are
/// optimally connected) such that a GS(n,d) overlay meets `target_nines`
/// (within [`NINES_TOLERANCE`]) under `model`. Used to regenerate
/// Table 3. GS requires `d ≥ 3` and `n ≥ 2d`; returns `None` if even the
/// strongest valid degree falls short.
pub fn choose_gs_degree(n: usize, model: &ReliabilityModel, target_nines: f64) -> Option<usize> {
    let max_d = n / 2;
    (3..=max_d).find(|&d| model.nines(n, d) >= target_nines - NINES_TOLERANCE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_pf() {
        let m = ReliabilityModel::paper_default();
        // p_f = 1 − e^{−24/17520} ≈ 1.369e−3.
        assert!((m.p_f - 1.369e-3).abs() < 2e-5, "p_f = {}", m.p_f);
    }

    #[test]
    fn binomial_tail_sanity() {
        assert_eq!(binomial_tail(10, 0, 0.5), 1.0);
        assert!((binomial_tail(1, 1, 0.3) - 0.3).abs() < 1e-12);
        // P[X≥1] = 1 − (1−p)^n.
        let p = 0.01;
        let exact = 1.0 - (1.0f64 - p).powi(20);
        assert!((binomial_tail(20, 1, p) - exact).abs() < 1e-12);
        assert_eq!(binomial_tail(5, 6, 0.4), 0.0);
    }

    #[test]
    fn binomial_tail_symmetry_check() {
        // P[X ≥ k] + P[X ≤ k−1] = 1; compute head directly for small n.
        let (n, k, p) = (12usize, 4usize, 0.2f64);
        let head: f64 = (0..k)
            .map(|i| ln_choose(n, i).exp() * p.powi(i as i32) * (1.0 - p).powi((n - i) as i32))
            .sum();
        assert!((binomial_tail(n, k, p) + head - 1.0).abs() < 1e-10);
    }

    #[test]
    fn ln_choose_values() {
        assert!((ln_choose(5, 2) - 10f64.ln()).abs() < 1e-12);
        assert!((ln_choose(10, 0)).abs() < 1e-12);
        assert_eq!(ln_choose(3, 5), f64::NEG_INFINITY);
    }

    #[test]
    fn ln_factorial_stirling_agrees_with_exact() {
        // Cross the exact/Stirling boundary.
        let exact: f64 = (2..=300usize).map(|i| (i as f64).ln()).sum();
        assert!((ln_factorial(300) - exact).abs() < 1e-6);
    }

    #[test]
    fn table3_degrees_from_reliability_target() {
        // Table 3: minimal GS degree for 6-nines at the paper's model.
        let m = ReliabilityModel::paper_default();
        let rows: &[(usize, usize)] = &[
            (6, 3),
            (8, 3),
            (11, 3),
            (16, 4),
            (22, 4),
            (32, 4),
            (45, 4),
            (64, 5),
            (90, 5),
            (128, 5),
            (256, 7),
            (512, 8),
            (1024, 11),
        ];
        for &(n, d) in rows {
            let got = choose_gs_degree(n, &m, 6.0).unwrap();
            assert_eq!(got, d, "n={n}: expected degree {d}, got {got}");
        }
    }

    #[test]
    fn more_servers_need_more_connectivity() {
        let m = ReliabilityModel::paper_default();
        let d64 = choose_gs_degree(64, &m, 6.0).unwrap();
        let d4096 = choose_gs_degree(4096, &m, 6.0).unwrap();
        assert!(d4096 > d64);
    }

    #[test]
    fn nines_monotone_in_k() {
        let m = ReliabilityModel::paper_default();
        let n = 128;
        let mut last = 0.0;
        for k in 1..10 {
            let nines = m.nines(n, k);
            assert!(nines > last, "nines must grow with connectivity");
            last = nines;
        }
    }

    #[test]
    fn binomial_graph_misses_the_target_both_ways() {
        // Fig 5's point: binomial connectivity (≈ 2⌊log₂n⌋ + 1) is fixed
        // by n — at moderate n it wastes work on extra reliability, and
        // at very large n (k below the expected failure count) it cannot
        // reach the target at all, while GS(n,d) can be fitted exactly.
        let m = ReliabilityModel::paper_default();

        // n = 2^12: binomial k = 25 delivers ~8.9 nines — "too much".
        let n = 1 << 12;
        let binomial_k = 2 * 12 + 1;
        assert!(m.nines(n, binomial_k) > 7.0);
        let d = choose_gs_degree(n, &m, 6.0).unwrap();
        assert!(d < binomial_k, "GS needs less redundancy: d={d} vs k={binomial_k}");
        assert!(m.nines(n, d) >= 5.95);
        assert!(m.nines(n, d.saturating_sub(1)) < 5.95);

        // n = 2^15: binomial k = 31 < E[failures] ≈ 45 — "not enough".
        let n = 1 << 15;
        let binomial_k = 2 * 15 + 1;
        assert!(m.nines(n, binomial_k) < 1.0);
        let d = choose_gs_degree(n, &m, 6.0).unwrap();
        assert!(d > binomial_k);
        assert!(m.nines(n, d) >= 5.95);
    }
}
