//! Compact digraph representation.
//!
//! AllConcur overlays are small (tens to a few thousand vertices) and
//! *static within a round*: the protocol reads successor/predecessor lists
//! on every message but never mutates the overlay mid-round. The
//! representation is therefore a frozen CSR-style structure: successor and
//! predecessor lists in flat arrays with per-vertex offsets, giving cache
//! friendly O(deg) iteration and O(1) membership checks via a bitset.

use std::fmt;

/// Index of a vertex (server) in a digraph. Kept as `u32`: the paper's
/// largest deployment is 2^15 servers and indices are stored in bulk.
pub type NodeId = u32;

/// An immutable digraph with `n` vertices labelled `0..n`.
///
/// Construction goes through [`DigraphBuilder`]; all analyses in this crate
/// take `&Digraph`.
#[derive(Clone, PartialEq, Eq)]
pub struct Digraph {
    n: u32,
    /// CSR offsets into `succs`, length n + 1.
    succ_off: Vec<u32>,
    /// Flat successor lists, sorted per vertex.
    succs: Vec<NodeId>,
    /// CSR offsets into `preds`, length n + 1.
    pred_off: Vec<u32>,
    /// Flat predecessor lists, sorted per vertex.
    preds: Vec<NodeId>,
}

impl Digraph {
    /// Number of vertices.
    #[inline]
    pub fn order(&self) -> usize {
        self.n as usize
    }

    /// Number of directed edges.
    #[inline]
    pub fn size(&self) -> usize {
        self.succs.len()
    }

    /// Successors of `v` (the servers `v` sends to), sorted ascending.
    #[inline]
    pub fn successors(&self, v: NodeId) -> &[NodeId] {
        let (a, b) = (self.succ_off[v as usize], self.succ_off[v as usize + 1]);
        &self.succs[a as usize..b as usize]
    }

    /// Predecessors of `v` (the servers `v` receives from), sorted ascending.
    #[inline]
    pub fn predecessors(&self, v: NodeId) -> &[NodeId] {
        let (a, b) = (self.pred_off[v as usize], self.pred_off[v as usize + 1]);
        &self.preds[a as usize..b as usize]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.successors(v).len()
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.predecessors(v).len()
    }

    /// `d(G)`: the maximum in- or out-degree over all vertices (§2.1.1).
    pub fn degree(&self) -> usize {
        (0..self.n).map(|v| self.out_degree(v).max(self.in_degree(v))).max().unwrap_or(0)
    }

    /// Whether the digraph is `d`-regular: every vertex has in-degree and
    /// out-degree exactly `d(G)`.
    pub fn is_regular(&self) -> bool {
        if self.n == 0 {
            return true;
        }
        let d = self.out_degree(0);
        (0..self.n).all(|v| self.out_degree(v) == d && self.in_degree(v) == d)
    }

    /// Whether edge `(u, v)` exists. O(log d) via binary search on the
    /// sorted successor list.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.successors(u).binary_search(&v).is_ok()
    }

    /// Iterator over all edges `(u, v)`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.n).flat_map(move |u| self.successors(u).iter().map(move |&v| (u, v)))
    }

    /// Iterator over all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = NodeId> {
        0..self.n
    }

    /// The transpose digraph (every edge reversed). Used by the
    /// eventually-perfect-FD mode: `BWD` messages are R-broadcast over the
    /// transpose of `G` (§3.3.2).
    pub fn transpose(&self) -> Digraph {
        Digraph {
            n: self.n,
            succ_off: self.pred_off.clone(),
            succs: self.preds.clone(),
            pred_off: self.succ_off.clone(),
            preds: self.succs.clone(),
        }
    }

    /// The subgraph induced by removing `removed` vertices (edge endpoints
    /// keep their original labels; removed vertices keep their slots but
    /// lose all edges). This mirrors the paper's `G_F` (§2.1.1) while
    /// preserving vertex identity, which the protocol relies on.
    pub fn remove_vertices(&self, removed: &[NodeId]) -> Digraph {
        let mut gone = vec![false; self.n as usize];
        for &r in removed {
            gone[r as usize] = true;
        }
        let mut b = DigraphBuilder::new(self.n as usize);
        for (u, v) in self.edges() {
            if !gone[u as usize] && !gone[v as usize] {
                b.add_edge(u, v);
            }
        }
        b.build()
    }

    /// `D(G)`: length of the longest shortest path between any ordered pair
    /// of vertices, or `None` if the digraph is not strongly connected.
    /// BFS from every vertex: O(n·(n+m)).
    pub fn diameter(&self) -> Option<usize> {
        crate::traversal::diameter(self)
    }

    /// Whether the digraph is strongly connected.
    pub fn is_strongly_connected(&self) -> bool {
        crate::traversal::is_strongly_connected(self)
    }

    /// Approximate heap footprint in bytes (Table 2: storing `G` costs
    /// `O(n·d)` per server).
    pub fn memory_bytes(&self) -> usize {
        self.succ_off.capacity() * 4
            + self.succs.capacity() * 4
            + self.pred_off.capacity() * 4
            + self.preds.capacity() * 4
    }
}

impl fmt::Debug for Digraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Digraph(n={}, m={})", self.n, self.size())?;
        for v in 0..self.n.min(32) {
            writeln!(f, "  {v} -> {:?}", self.successors(v))?;
        }
        if self.n > 32 {
            writeln!(f, "  ... ({} more vertices)", self.n - 32)?;
        }
        Ok(())
    }
}

/// Incremental builder for [`Digraph`]. Duplicate edges and self-loops are
/// rejected at build time with a panic in debug builds and silently deduped
/// in release (constructors in this crate never produce either).
#[derive(Clone, Debug)]
pub struct DigraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl DigraphBuilder {
    /// Start building a digraph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "vertex count exceeds u32 range");
        DigraphBuilder { n, edges: Vec::new() }
    }

    /// Add the directed edge `(u, v)`. Self-loops are ignored: AllConcur
    /// overlays never contain them (a server does not send to itself), and
    /// the GS construction explicitly rewrites de Bruijn self-loops into
    /// cycles (§4.4).
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        debug_assert!((u as usize) < self.n, "edge source {u} out of range");
        debug_assert!((v as usize) < self.n, "edge target {v} out of range");
        if u != v {
            self.edges.push((u, v));
        }
        self
    }

    /// Add both `(u, v)` and `(v, u)`; convenience for symmetric overlays
    /// such as binomial graphs.
    pub fn add_bidirectional(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        self.add_edge(u, v);
        self.add_edge(v, u)
    }

    /// Number of vertices this builder was created with.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Freeze into an immutable [`Digraph`].
    pub fn build(mut self) -> Digraph {
        let n = self.n;
        self.edges.sort_unstable();
        self.edges.dedup();

        let mut succ_off = vec![0u32; n + 1];
        for &(u, _) in &self.edges {
            succ_off[u as usize + 1] += 1;
        }
        for i in 0..n {
            succ_off[i + 1] += succ_off[i];
        }
        let succs: Vec<NodeId> = self.edges.iter().map(|&(_, v)| v).collect();

        // Predecessor lists: counting sort by target.
        let mut pred_off = vec![0u32; n + 1];
        for &(_, v) in &self.edges {
            pred_off[v as usize + 1] += 1;
        }
        for i in 0..n {
            pred_off[i + 1] += pred_off[i];
        }
        let mut cursor = pred_off.clone();
        let mut preds = vec![0 as NodeId; self.edges.len()];
        for &(u, v) in &self.edges {
            let c = &mut cursor[v as usize];
            preds[*c as usize] = u;
            *c += 1;
        }
        // Each bucket was filled in ascending source order (edges sorted by
        // (u, v)), so predecessor lists are already sorted.

        Digraph { n: n as u32, succ_off, succs, pred_off, preds }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Digraph {
        let mut b = DigraphBuilder::new(3);
        b.add_edge(0, 1).add_edge(1, 2).add_edge(2, 0);
        b.build()
    }

    #[test]
    fn empty_digraph() {
        let g = DigraphBuilder::new(0).build();
        assert_eq!(g.order(), 0);
        assert_eq!(g.size(), 0);
        assert_eq!(g.degree(), 0);
        assert!(g.is_regular());
    }

    #[test]
    fn single_vertex() {
        let g = DigraphBuilder::new(1).build();
        assert_eq!(g.order(), 1);
        assert_eq!(g.size(), 0);
        assert!(g.successors(0).is_empty());
        assert!(g.predecessors(0).is_empty());
    }

    #[test]
    fn triangle_structure() {
        let g = triangle();
        assert_eq!(g.order(), 3);
        assert_eq!(g.size(), 3);
        assert_eq!(g.successors(0), &[1]);
        assert_eq!(g.predecessors(0), &[2]);
        assert_eq!(g.successors(1), &[2]);
        assert_eq!(g.predecessors(2), &[1]);
        assert!(g.is_regular());
        assert_eq!(g.degree(), 1);
    }

    #[test]
    fn has_edge_lookup() {
        let g = triangle();
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert!(g.has_edge(2, 0));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn self_loops_ignored() {
        let mut b = DigraphBuilder::new(2);
        b.add_edge(0, 0).add_edge(0, 1).add_edge(1, 1);
        let g = b.build();
        assert_eq!(g.size(), 1);
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn duplicate_edges_deduped() {
        let mut b = DigraphBuilder::new(2);
        b.add_edge(0, 1).add_edge(0, 1).add_edge(0, 1);
        assert_eq!(b.build().size(), 1);
    }

    #[test]
    fn transpose_reverses_edges() {
        let g = triangle();
        let t = g.transpose();
        assert!(t.has_edge(1, 0));
        assert!(t.has_edge(2, 1));
        assert!(t.has_edge(0, 2));
        assert_eq!(t.size(), 3);
        // Double transpose is the identity.
        assert_eq!(t.transpose(), g);
    }

    #[test]
    fn successor_lists_sorted() {
        let mut b = DigraphBuilder::new(5);
        b.add_edge(0, 4).add_edge(0, 2).add_edge(0, 3).add_edge(0, 1);
        let g = b.build();
        assert_eq!(g.successors(0), &[1, 2, 3, 4]);
    }

    #[test]
    fn predecessor_lists_sorted() {
        let mut b = DigraphBuilder::new(5);
        b.add_edge(4, 0).add_edge(2, 0).add_edge(3, 0).add_edge(1, 0);
        let g = b.build();
        assert_eq!(g.predecessors(0), &[1, 2, 3, 4]);
    }

    #[test]
    fn remove_vertices_keeps_labels() {
        // 0 -> 1 -> 2 -> 3 -> 0 ring; removing 1 leaves edges 2->3, 3->0.
        let mut b = DigraphBuilder::new(4);
        b.add_edge(0, 1).add_edge(1, 2).add_edge(2, 3).add_edge(3, 0);
        let g = b.build().remove_vertices(&[1]);
        assert_eq!(g.order(), 4);
        assert_eq!(g.size(), 2);
        assert!(g.has_edge(2, 3));
        assert!(g.has_edge(3, 0));
        assert!(g.successors(1).is_empty());
        assert!(g.predecessors(1).is_empty());
    }

    #[test]
    fn bidirectional_helper() {
        let mut b = DigraphBuilder::new(2);
        b.add_bidirectional(0, 1);
        let g = b.build();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
    }

    #[test]
    fn edges_iterator_complete() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 0)]);
    }

    #[test]
    fn memory_accounting_nonzero() {
        assert!(triangle().memory_bytes() > 0);
    }
}

impl Digraph {
    /// Graphviz DOT rendering of the digraph — handy for inspecting small
    /// overlays (`dot -Tsvg`). Vertices listed in `highlight` are drawn
    /// filled (e.g. failed servers).
    pub fn to_dot(&self, name: &str, highlight: &[NodeId]) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(32 + self.size() * 12);
        writeln!(out, "digraph {name} {{").expect("string write");
        writeln!(out, "  rankdir=LR; node [shape=circle];").expect("string write");
        for v in highlight {
            writeln!(out, "  {v} [style=filled, fillcolor=lightcoral];").expect("string write");
        }
        for (u, v) in self.edges() {
            writeln!(out, "  {u} -> {v};").expect("string write");
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod dot_tests {
    use super::*;

    #[test]
    fn dot_output_contains_all_edges() {
        let mut b = DigraphBuilder::new(3);
        b.add_edge(0, 1).add_edge(1, 2).add_edge(2, 0);
        let dot = b.build().to_dot("ring3", &[1]);
        assert!(dot.starts_with("digraph ring3 {"));
        assert!(dot.contains("0 -> 1;"));
        assert!(dot.contains("1 -> 2;"));
        assert!(dot.contains("2 -> 0;"));
        assert!(dot.contains("1 [style=filled"));
        assert!(dot.trim_end().ends_with('}'));
    }
}
