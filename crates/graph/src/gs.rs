//! GS(n,d) digraphs (Soneoka, Imase, Manabe 1996) — AllConcur's overlay of
//! choice (§4.4).
//!
//! Properties the paper relies on:
//!
//! * defined for any `d ≥ 3` and `n ≥ 2d` — unlike binomial graphs, the
//!   degree (and therefore the connectivity / fault tolerance) is a free
//!   parameter, so the overlay can be fitted to a reliability target;
//! * `d`-regular and **optimally connected**: `k(GS(n,d)) = d`;
//! * quasiminimal diameter for `n ≤ d³ + d`: at most one above the Moore
//!   lower bound `D_L(n,d) = ⌈log_d(n(d−1)+d)⌉ − 1`;
//! * experimentally low fault diameter (§4.2.3's heuristic applies).
//!
//! Construction (§4.4): let `n = m·d + t` with `0 ≤ t < d`. Build the
//! self-loop-free de Bruijn rewrite `G*_B(m,d)` ([`crate::de_bruijn`]),
//! take its line digraph `L(G*_B)` (`m·d` vertices), and if `t > 0` splice
//! in `t` extra vertices `W` around an arbitrary vertex `v` of `G*_B`.

use crate::de_bruijn::{de_bruijn_star, MultiDigraph};
use crate::digraph::{Digraph, DigraphBuilder, NodeId};
use crate::GraphError;

/// The line digraph `L(G)` of a multigraph: one vertex per edge *copy* of
/// `G`; edge `(e₁, e₂)` whenever `e₁ = (u,v)` and `e₂ = (v,w)`.
///
/// Also returns, for each line-vertex, the underlying `(u, v)` pair, so
/// callers can locate the in-/out-edge bundles of a chosen vertex.
pub fn line_digraph(g: &MultiDigraph) -> (Digraph, Vec<(u32, u32)>) {
    let edges: Vec<(u32, u32)> = g.edges().to_vec();
    let ne = edges.len();
    // Bucket line-vertices by source endpoint for O(m·d²) construction.
    let mut by_source: Vec<Vec<u32>> = vec![Vec::new(); g.order()];
    for (idx, &(u, _)) in edges.iter().enumerate() {
        by_source[u as usize].push(idx as u32);
    }
    let mut b = DigraphBuilder::new(ne);
    for (idx, &(_, v)) in edges.iter().enumerate() {
        for &jdx in &by_source[v as usize] {
            // No self-loops can arise: edges (u,v), (v,w) coincide only if
            // u = v, and G*_B is self-loop-free.
            b.add_edge(idx as NodeId, jdx as NodeId);
        }
    }
    (b.build(), edges)
}

/// Build `GS(n, d)`. Requires `d ≥ 3` and `n ≥ 2d` (§4.4).
pub fn gs_digraph(n: usize, d: usize) -> Result<Digraph, GraphError> {
    if d < 3 {
        return Err(GraphError::InvalidParameters(format!("GS(n,d) requires d >= 3, got d={d}")));
    }
    if n < 2 * d {
        return Err(GraphError::InvalidParameters(format!(
            "GS(n,d) requires n >= 2d, got n={n}, d={d}"
        )));
    }
    let m = n / d;
    let t = n % d;
    let star = de_bruijn_star(m, d)?;
    let (line, line_edges) = line_digraph(&star);
    debug_assert_eq!(line.order(), m * d);

    if t == 0 {
        debug_assert!(line.is_regular());
        return Ok(line);
    }

    // Splice in t extra vertices around an arbitrary G*_B vertex v; we fix
    // v = 0 for determinism. X = the d line-vertices that are edges *into*
    // v; Y = the d line-vertices that are edges *out of* v, both in edge-
    // list order (the construction allows any ordering).
    let v = 0u32;
    let xs: Vec<u32> = line_edges
        .iter()
        .enumerate()
        .filter(|(_, &(_, b))| b == v)
        .map(|(i, _)| i as u32)
        .collect();
    let ys: Vec<u32> = line_edges
        .iter()
        .enumerate()
        .filter(|(_, &(a, _))| a == v)
        .map(|(i, _)| i as u32)
        .collect();
    debug_assert_eq!(xs.len(), d);
    debug_assert_eq!(ys.len(), d);

    let base = line.order();
    let w = |i: usize| (base + i) as NodeId; // w_0 .. w_{t-1}

    let mut b = DigraphBuilder::new(base + t);

    // Removed-edge set: M_i = {(x_{i+p}, y_{i+q}) : q = (i+p) mod (d−t+1),
    // 0 ≤ p ≤ d−t}. Collect into a lookup before copying E'.
    let span = d - t + 1; // |X_i| = |Y_i|
                          // Sorted Vec + binary search: only membership is needed, and a
                          // hash set's iteration order must never be able to leak anywhere.
    let mut removed: Vec<(NodeId, NodeId)> = Vec::with_capacity(t * span);
    for i in 0..t {
        for p in 0..span {
            let q = (i + p) % span;
            removed.push((xs[i + p], ys[i + q]));
        }
    }
    removed.sort_unstable();

    // E' minus the removed matchings.
    for (u_, v_) in line.edges() {
        if removed.binary_search(&(u_, v_)).is_err() {
            b.add_edge(u_, v_);
        }
    }
    // Complete digraph among the new vertices W.
    for i in 0..t {
        for j in 0..t {
            if i != j {
                b.add_edge(w(i), w(j));
            }
        }
    }
    // (x, w_i) for x ∈ X_i and (w_i, y) for y ∈ Y_i.
    for i in 0..t {
        for p in 0..span {
            b.add_edge(xs[i + p], w(i));
            b.add_edge(w(i), ys[i + p]);
        }
    }

    let g = b.build();
    debug_assert_eq!(g.order(), n);
    debug_assert!(g.is_regular(), "GS({n},{d}) must be d-regular");
    debug_assert_eq!(g.degree(), d);
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::vertex_connectivity;
    use crate::moore::moore_diameter_lower_bound;

    /// Table 3 rows that are cheap enough to check in a unit test
    /// (diameter is all-pairs BFS).
    const TABLE3_SMALL: &[(usize, usize, usize)] = &[
        // (n, d, D) from Table 3.
        (6, 3, 2),
        (8, 3, 2),
        (11, 3, 3),
        (16, 4, 2),
        (22, 4, 3),
        (32, 4, 3),
        (45, 4, 4),
        (64, 5, 4),
        (90, 5, 3),
        (128, 5, 4),
    ];

    #[test]
    fn regular_and_connected_for_table3_sizes() {
        for &(n, d, _) in TABLE3_SMALL {
            let g = gs_digraph(n, d).unwrap();
            assert_eq!(g.order(), n);
            assert!(g.is_regular(), "GS({n},{d}) not regular");
            assert_eq!(g.degree(), d);
            assert!(g.is_strongly_connected(), "GS({n},{d}) disconnected");
            assert_eq!(g.size(), n * d);
        }
    }

    #[test]
    fn diameter_quasiminimal_for_table3_sizes() {
        // Soneoka et al. guarantee D ≤ D_L + 1 for n ≤ d³ + d. The paper's
        // Table 3 lists measured D values; our deterministic construction
        // must stay within the quasiminimal bound, and we record where it
        // matches the paper exactly.
        for &(n, d, paper_d) in TABLE3_SMALL {
            let g = gs_digraph(n, d).unwrap();
            let dl = moore_diameter_lower_bound(n, d);
            let diam = g.diameter().expect("connected");
            assert!(diam >= dl, "GS({n},{d}): D={diam} below Moore bound {dl}");
            if n <= d * d * d + d {
                assert!(
                    diam <= dl + 1,
                    "GS({n},{d}): D={diam} exceeds quasiminimal bound {}",
                    dl + 1
                );
            }
            // The paper's D is either D_L or D_L+1 too; both ours and
            // theirs live in the same 2-value window.
            assert!(paper_d >= dl && paper_d <= dl + 1, "paper value outside window");
        }
    }

    #[test]
    fn optimally_connected_small() {
        for &(n, d) in &[(6usize, 3usize), (8, 3), (11, 3), (16, 4), (22, 4)] {
            let g = gs_digraph(n, d).unwrap();
            assert_eq!(vertex_connectivity(&g), d, "GS({n},{d}) not optimally connected");
        }
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(gs_digraph(8, 2).is_err());
        assert!(gs_digraph(5, 3).is_err());
        assert!(gs_digraph(0, 3).is_err());
    }

    #[test]
    fn t_zero_is_pure_line_digraph() {
        // n = 12, d = 3 → m = 4, t = 0.
        let g = gs_digraph(12, 3).unwrap();
        assert_eq!(g.order(), 12);
        assert!(g.is_regular());
        assert!(g.is_strongly_connected());
    }

    #[test]
    fn line_digraph_of_cycle_is_cycle() {
        let mut c = MultiDigraph::new(3);
        c.add_edge(0, 1);
        c.add_edge(1, 2);
        c.add_edge(2, 0);
        let (l, _) = line_digraph(&c);
        assert_eq!(l.order(), 3);
        assert_eq!(l.size(), 3);
        assert!(l.is_strongly_connected());
    }

    #[test]
    fn line_digraph_parallel_edges_become_distinct_vertices() {
        let mut g = MultiDigraph::new(2);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        let (l, edges) = line_digraph(&g);
        assert_eq!(l.order(), 3);
        assert_eq!(edges.len(), 3);
        // Both copies of (0,1) point to (1,0), which points back to both.
        assert_eq!(l.size(), 4);
    }

    #[test]
    fn gs_1024_d11_builds_and_is_regular() {
        // The largest deployment in the paper (Fig 9/10). Diameter check is
        // skipped here (costly); the bench binary covers it.
        let g = gs_digraph(1024, 11).unwrap();
        assert_eq!(g.order(), 1024);
        assert!(g.is_regular());
        assert_eq!(g.degree(), 11);
        assert!(g.is_strongly_connected());
    }

    #[test]
    fn degree_equals_d_exactly_with_t_nonzero() {
        // n = 8, d = 3 → m = 2, t = 2: the hardest splice case (small m,
        // parallel edges everywhere).
        let g = gs_digraph(8, 3).unwrap();
        for v in g.vertices() {
            assert_eq!(g.out_degree(v), 3, "vertex {v} out-degree");
            assert_eq!(g.in_degree(v), 3, "vertex {v} in-degree");
        }
    }
}
