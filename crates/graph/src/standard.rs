//! Standard digraph families used as baselines and test fixtures:
//! complete digraphs (the naive reliable-broadcast overlay of §2.1),
//! directed rings, binary hypercubes, and random regular digraphs.

use crate::digraph::{Digraph, DigraphBuilder, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Complete digraph `K_n`: every ordered pair is an edge. This is the
/// overlay of the simple reliable broadcast algorithm in §2.1; it tolerates
/// `n - 2` failures but costs `O(n²)` messages.
pub fn complete_digraph(n: usize) -> Digraph {
    let mut b = DigraphBuilder::new(n);
    for u in 0..n as NodeId {
        for v in 0..n as NodeId {
            if u != v {
                b.add_edge(u, v);
            }
        }
    }
    b.build()
}

/// Directed ring `0 → 1 → … → n−1 → 0`: degree 1, diameter `n − 1`,
/// connectivity 1. The minimal connected overlay; useful as a worst case.
pub fn ring_digraph(n: usize) -> Digraph {
    let mut b = DigraphBuilder::new(n);
    if n > 1 {
        for u in 0..n as NodeId {
            b.add_edge(u, (u + 1) % n as NodeId);
        }
    }
    b.build()
}

/// Binary hypercube on `n = 2^dim` vertices, each edge in both directions:
/// degree `dim`, diameter `dim`, connectivity `dim`. The paper compares
/// binomial graphs against hypercubes (§4.4).
pub fn hypercube_digraph(dim: u32) -> Digraph {
    let n = 1usize << dim;
    let mut b = DigraphBuilder::new(n);
    for u in 0..n as NodeId {
        for bit in 0..dim {
            b.add_edge(u, u ^ (1 << bit));
        }
    }
    b.build()
}

/// Random `d`-regular digraph on `n` vertices built from `d` random
/// permutations (rejecting self-loops and duplicate edges by resampling).
/// Used by randomized/property tests as an "arbitrary regular overlay".
///
/// Requires `d < n`. Retries permutations until every column is a
/// derangement relative to the identity and previously chosen columns; for
/// `d ≪ n` this terminates quickly with overwhelming probability.
pub fn random_regular_digraph<R: Rng>(n: usize, d: usize, rng: &mut R) -> Digraph {
    assert!(d < n, "degree must be < n");
    let mut succ: Vec<Vec<NodeId>> = vec![Vec::with_capacity(d); n];
    let mut perm: Vec<NodeId> = (0..n as NodeId).collect();
    let mut cols = 0;
    let mut attempts = 0;
    while cols < d {
        perm.shuffle(rng);
        attempts += 1;
        assert!(attempts < 10_000, "failed to sample regular digraph");
        let ok = (0..n).all(|i| perm[i] != i as NodeId && !succ[i].contains(&perm[i]));
        if ok {
            for i in 0..n {
                succ[i].push(perm[i]);
            }
            cols += 1;
        }
    }
    let mut b = DigraphBuilder::new(n);
    for (u, list) in succ.iter().enumerate() {
        for &v in list {
            b.add_edge(u as NodeId, v);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::vertex_connectivity;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn complete_parameters() {
        let g = complete_digraph(6);
        assert_eq!(g.size(), 30);
        assert_eq!(g.degree(), 5);
        assert!(g.is_regular());
        assert_eq!(g.diameter(), Some(1));
    }

    #[test]
    fn ring_parameters() {
        let g = ring_digraph(7);
        assert_eq!(g.size(), 7);
        assert_eq!(g.degree(), 1);
        assert!(g.is_regular());
        assert_eq!(g.diameter(), Some(6));
        assert_eq!(vertex_connectivity(&g), 1);
    }

    #[test]
    fn ring_small() {
        assert_eq!(ring_digraph(1).size(), 0);
        let g2 = ring_digraph(2);
        assert_eq!(g2.size(), 2);
        assert!(g2.has_edge(0, 1) && g2.has_edge(1, 0));
    }

    #[test]
    fn hypercube_parameters() {
        let g = hypercube_digraph(3);
        assert_eq!(g.order(), 8);
        assert_eq!(g.degree(), 3);
        assert!(g.is_regular());
        assert_eq!(g.diameter(), Some(3));
        assert_eq!(vertex_connectivity(&g), 3);
    }

    #[test]
    fn random_regular_is_regular_and_connected_usually() {
        let mut rng = StdRng::seed_from_u64(42);
        let g = random_regular_digraph(24, 4, &mut rng);
        assert!(g.is_regular());
        assert_eq!(g.degree(), 4);
        assert_eq!(g.order(), 24);
    }
}
