//! Min-sum vertex-disjoint paths — the paper's fault-diameter heuristic
//! (§4.2.3).
//!
//! The true fault-diameter bound needs the *min-max* `(f+1)`-disjoint-paths
//! problem (find `f+1` vertex-disjoint paths minimizing the longest), which
//! is strongly NP-complete (Li, McCormick, Simchi-Levi). The paper's
//! heuristic solves the tractable *min-sum* relaxation instead — a
//! minimum-cost flow of value `f+1` on the vertex-split network — and uses
//! the inequality chain (Eq. 1):
//!
//! ```text
//! avg_len(min-sum) ≤ avg_len(min-max) ≤ δ_f ≤ δ̂_f = max_len(min-sum)
//! ```
//!
//! so `δ̂_f` upper-bounds the fault diameter when `D_f(G,f) ≤ δ_f` (the
//! Krishnamoorthy & Krishnamurthy condition), and `avg_len` certifies how
//! tight the approximation is.

use crate::digraph::{Digraph, NodeId};

/// Result of the min-sum disjoint-path computation for one vertex pair.
#[derive(Debug, Clone, PartialEq)]
pub struct DisjointPaths {
    /// The vertex-disjoint paths, each including both endpoints.
    pub paths: Vec<Vec<NodeId>>,
    /// Length (edge count) of the longest path: `δ̂_f` for this pair.
    pub max_len: usize,
    /// Mean path length — the Eq. (1) lower bound on `δ_f`.
    pub avg_len: f64,
}

/// Successive-shortest-paths min-cost flow tailored to unit vertex
/// capacities and unit edge costs.
struct McmfNetwork {
    head: Vec<Vec<u32>>,
    to: Vec<u32>,
    cap: Vec<i32>,
    cost: Vec<i32>,
}

impl McmfNetwork {
    fn new(n: usize) -> Self {
        McmfNetwork { head: vec![Vec::new(); n], to: Vec::new(), cap: Vec::new(), cost: Vec::new() }
    }

    fn add_edge(&mut self, u: usize, v: usize, cap: i32, cost: i32) {
        let e = self.to.len() as u32;
        self.head[u].push(e);
        self.to.push(v as u32);
        self.cap.push(cap);
        self.cost.push(cost);
        self.head[v].push(e + 1);
        self.to.push(u as u32);
        self.cap.push(0);
        self.cost.push(-cost);
    }

    /// Send up to `want` units from `s` to `t`; returns units sent.
    /// SPFA-based Bellman-Ford per augmentation (costs can be negative in
    /// the residual network). Flow values here are ≤ d ≤ ~11, so the
    /// simple variant is plenty.
    fn min_cost_flow(&mut self, s: usize, t: usize, want: i32) -> i32 {
        let n = self.head.len();
        let mut sent = 0;
        while sent < want {
            let mut dist = vec![i32::MAX; n];
            let mut in_queue = vec![false; n];
            let mut prev_edge = vec![u32::MAX; n];
            let mut queue = std::collections::VecDeque::new();
            dist[s] = 0;
            queue.push_back(s);
            in_queue[s] = true;
            while let Some(u) = queue.pop_front() {
                in_queue[u] = false;
                let du = dist[u];
                for &e in &self.head[u] {
                    let e = e as usize;
                    if self.cap[e] > 0 {
                        let v = self.to[e] as usize;
                        let nd = du + self.cost[e];
                        if nd < dist[v] {
                            dist[v] = nd;
                            prev_edge[v] = e as u32;
                            if !in_queue[v] {
                                in_queue[v] = true;
                                queue.push_back(v);
                            }
                        }
                    }
                }
            }
            if dist[t] == i32::MAX {
                break; // no more augmenting paths
            }
            // Augment by 1 unit (all relevant capacities are 1).
            let mut v = t;
            while v != s {
                let e = prev_edge[v] as usize;
                self.cap[e] -= 1;
                self.cap[e ^ 1] += 1;
                v = self.to[e ^ 1] as usize;
            }
            sent += 1;
        }
        sent
    }
}

/// Solve the min-sum `count`-vertex-disjoint-paths problem from `s` to `t`.
/// Returns `None` if fewer than `count` disjoint paths exist (i.e.
/// `count > λ(s,t)`).
pub fn min_sum_disjoint_paths(
    g: &Digraph,
    s: NodeId,
    t: NodeId,
    count: usize,
) -> Option<DisjointPaths> {
    assert_ne!(s, t, "disjoint paths need distinct endpoints");
    let n = g.order();
    let inn = |w: NodeId| 2 * w as usize;
    let out = |w: NodeId| 2 * w as usize + 1;
    let mut net = McmfNetwork::new(2 * n);
    for w in g.vertices() {
        let c = if w == s || w == t { count as i32 } else { 1 };
        net.add_edge(inn(w), out(w), c, 0);
    }
    for (u, v) in g.edges() {
        net.add_edge(out(u), inn(v), 1, 1);
    }
    let sent = net.min_cost_flow(out(s), inn(t), count as i32);
    if (sent as usize) < count {
        return None;
    }

    // Decode paths by walking saturated forward edges out of each vertex.
    // Build a successor map from used edges: edge (out(u) -> inn(v)) with
    // zero remaining capacity means the unit of flow traversed (u, v).
    let mut next: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for u in g.vertices() {
        for &e in &net.head[out(u)] {
            let e = e as usize;
            // Forward graph edges have cost 1 and were added with cap 1.
            if net.cost[e] == 1 && net.cap[e] == 0 {
                let v_in = net.to[e] as usize;
                let v = (v_in / 2) as NodeId;
                // Exclude residual/backward artifacts: forward edges go
                // out(u) -> inn(v), i.e. odd -> even node ids.
                if v_in.is_multiple_of(2) {
                    next[u as usize].push(v);
                }
            }
        }
    }
    let mut paths = Vec::with_capacity(count);
    for _ in 0..count {
        let mut path = vec![s];
        let mut cur = s;
        while cur != t {
            let nexts = &mut next[cur as usize];
            let step = nexts.pop().expect("flow decomposition broke: dead end");
            path.push(step);
            cur = step;
            assert!(path.len() <= n + 1, "flow decomposition cycled");
        }
        paths.push(path);
    }

    let max_len = paths.iter().map(|p| p.len() - 1).max().unwrap_or(0);
    let total: usize = paths.iter().map(|p| p.len() - 1).sum();
    let avg_len = total as f64 / paths.len() as f64;
    Some(DisjointPaths { paths, max_len, avg_len })
}

/// `δ̂_f` over all ordered vertex pairs: the max over pairs of the longest
/// of the `f+1` min-sum disjoint paths. Per Krishnamoorthy & Krishnamurthy,
/// `D_f(G, f) ≤ δ_f ≤ δ̂_f`. Also returns the Eq. (1) lower bound (max over
/// pairs of the average length, rounded up).
///
/// `O(n²)` min-cost flows: intended for construction-time analysis, not
/// the protocol hot path.
pub fn fault_diameter_bound(g: &Digraph, f: usize) -> Option<(usize, usize)> {
    let mut upper = 0usize;
    let mut lower = 0usize;
    for s in g.vertices() {
        for t in g.vertices() {
            if s == t {
                continue;
            }
            let dp = min_sum_disjoint_paths(g, s, t, f + 1)?;
            upper = upper.max(dp.max_len);
            lower = lower.max(dp.avg_len.ceil() as usize);
        }
    }
    Some((lower, upper))
}

/// Verify a set of paths is internally vertex-disjoint (shared endpoints
/// allowed). Exposed for tests and for the simulator's sanity checks.
pub fn are_vertex_disjoint(paths: &[Vec<NodeId>]) -> bool {
    // Collect interior vertices and sort: a duplicate shows up as two
    // equal neighbours. Deterministic, unlike a hash-set membership probe.
    let mut seen: Vec<NodeId> = Vec::new();
    for p in paths {
        if p.len() < 2 {
            return false;
        }
        seen.extend_from_slice(&p[1..p.len() - 1]);
    }
    seen.sort_unstable();
    seen.windows(2).all(|w| w[0] != w[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binomial::binomial_graph;
    use crate::standard::{complete_digraph, ring_digraph};

    #[test]
    fn complete_digraph_paths() {
        let g = complete_digraph(5);
        let dp = min_sum_disjoint_paths(&g, 0, 1, 4).unwrap();
        assert_eq!(dp.paths.len(), 4);
        assert!(are_vertex_disjoint(&dp.paths));
        // Min-sum: one direct edge (len 1) + three 2-hop paths.
        assert_eq!(dp.max_len, 2);
        let total: usize = dp.paths.iter().map(|p| p.len() - 1).sum();
        assert_eq!(total, 1 + 2 + 2 + 2);
    }

    #[test]
    fn ring_has_single_path() {
        let g = ring_digraph(6);
        assert!(min_sum_disjoint_paths(&g, 0, 3, 2).is_none());
        let dp = min_sum_disjoint_paths(&g, 0, 3, 1).unwrap();
        assert_eq!(dp.paths, vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn paths_start_and_end_correctly() {
        let g = binomial_graph(9);
        let dp = min_sum_disjoint_paths(&g, 2, 7, 4).unwrap();
        for p in &dp.paths {
            assert_eq!(*p.first().unwrap(), 2);
            assert_eq!(*p.last().unwrap(), 7);
            // Consecutive vertices are graph edges.
            for w in p.windows(2) {
                assert!(g.has_edge(w[0], w[1]), "non-edge in path: {w:?}");
            }
        }
        assert!(are_vertex_disjoint(&dp.paths));
    }

    #[test]
    fn paper_section_423_binomial_12_example() {
        // §4.2.3: binomial graph n = 12 (offsets ±1, ±2, ±4), k = 6, D = 2.
        // "After solving the min-sum problem, we can estimate the fault
        // diameter bound, i.e., 3 ≤ δ_f ≤ 4" for f = k − 1 = 5.
        let g = binomial_graph(12);
        let (lower, upper) = fault_diameter_bound(&g, 5).unwrap();
        assert!((2..=4).contains(&lower), "lower bound {lower} out of paper range");
        assert_eq!(upper, 4, "δ̂_5 should be 4 per the paper's example");
        // The paper names a length-4 path among the six disjoint 0→3
        // paths; check the pairwise solve reproduces a max length of 4.
        let dp = min_sum_disjoint_paths(&g, 0, 3, 6).unwrap();
        assert_eq!(dp.paths.len(), 6);
        assert!(are_vertex_disjoint(&dp.paths));
        assert!(dp.max_len >= 3, "0→3 needs at least one path of length ≥ 3");
    }

    #[test]
    fn eq1_lower_bound_never_exceeds_upper() {
        for n in [8usize, 10, 12] {
            let g = binomial_graph(n);
            let k = g.degree(); // binomial graphs are optimally connected
            for f in [1usize, 2, k - 1] {
                let (lo, hi) = fault_diameter_bound(&g, f).unwrap();
                assert!(lo <= hi, "n={n} f={f}: lower {lo} > upper {hi}");
            }
        }
    }

    #[test]
    fn asking_for_too_many_paths_fails() {
        let g = complete_digraph(4);
        assert!(min_sum_disjoint_paths(&g, 0, 1, 4).is_none()); // λ = 3
    }

    #[test]
    fn disjointness_checker() {
        assert!(are_vertex_disjoint(&[vec![0, 1, 2], vec![0, 3, 2]]));
        assert!(!are_vertex_disjoint(&[vec![0, 1, 2], vec![0, 1, 2]]));
        assert!(!are_vertex_disjoint(&[vec![0]]));
    }
}
