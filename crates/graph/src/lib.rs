#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # allconcur-graph — digraph substrate for AllConcur
//!
//! AllConcur (Poke, Hoefler, Glass — HPDC'17) disseminates messages over a
//! logical overlay network described by a digraph `G`. The overlay's
//! parameters govern the whole system (§2.1.1 of the paper):
//!
//! * **degree** `d(G)` — work per server is `O(n·d)`;
//! * **diameter** `D(G)` — failure-free agreement depth;
//! * **vertex-connectivity** `k(G)` — fault tolerance: AllConcur is
//!   `f`-resilient for any `f < k(G)`;
//! * **fault diameter** `D_f(G, f)` — worst-case depth after `f` failures.
//!
//! This crate implements everything the paper needs from graph theory:
//!
//! * [`Digraph`] — compact adjacency representation with successor and
//!   predecessor lists;
//! * constructors: [`binomial::binomial_graph`] (Angskun et al.),
//!   [`gs::gs_digraph`] (the GS(n,d) digraphs of Soneoka et al. used by
//!   AllConcur, §4.4), [`de_bruijn`] (the generalized de Bruijn digraphs
//!   GS(n,d) is built from), and the standard digraphs in [`standard`];
//! * analyses: [`connectivity`] (vertex connectivity via max-flow and
//!   Menger's theorem), [`disjoint_paths`] (min-sum vertex-disjoint paths
//!   via min-cost flow — the §4.2.3 fault-diameter heuristic),
//!   [`fault_diameter`] (exact `D_f` for small graphs plus the `δ̂_f`
//!   bound), and [`reliability`] (the `ρ_G` model behind Fig. 5/Table 3).
//!
//! ## Quick example
//!
//! ```
//! use allconcur_graph::{gs::gs_digraph, connectivity::vertex_connectivity};
//!
//! // The overlay used by the paper for 8 servers: GS(8,3), degree 3,
//! // diameter 2 (Fig. 1b).
//! let g = gs_digraph(8, 3).unwrap();
//! assert_eq!(g.order(), 8);
//! assert_eq!(g.degree(), 3);
//! assert_eq!(g.diameter(), Some(2));
//! // Optimally connected: k(G) = d(G), so up to 2 failures are tolerated.
//! assert_eq!(vertex_connectivity(&g), 3);
//! ```

pub mod binomial;
pub mod connectivity;
pub mod de_bruijn;
pub mod digraph;
pub mod disjoint_paths;
pub mod fault_diameter;
pub mod gs;
pub mod moore;
pub mod reliability;
pub mod standard;
pub mod traversal;

pub use digraph::{Digraph, DigraphBuilder, NodeId};
pub use gs::gs_digraph;
pub use moore::moore_diameter_lower_bound;
pub use reliability::{choose_gs_degree, ReliabilityModel};

/// Errors produced by graph constructors and analyses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The requested parameters cannot produce a valid digraph
    /// (e.g. GS(n,d) requires `d >= 3` and `n >= 2d`).
    InvalidParameters(String),
    /// The digraph is not connected, so the requested analysis is undefined.
    Disconnected,
    /// The analysis requires a regular digraph.
    NotRegular,
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::InvalidParameters(msg) => write!(f, "invalid parameters: {msg}"),
            GraphError::Disconnected => write!(f, "digraph is disconnected"),
            GraphError::NotRegular => write!(f, "digraph is not regular"),
        }
    }
}

impl std::error::Error for GraphError {}
