//! Fault diameter `D_f(G, f)` (§2.1.1, §4.2.3).
//!
//! `D_f(G, f)` is the maximum diameter over all digraphs `G_F` obtained by
//! removing any `f < k(G)` vertices. AllConcur's worst-case depth is
//! `f + D_f(G, f)` (§2.2.1); the expected depth analysis (§4.2.2) needs
//! `D_f` too.
//!
//! Three estimators, in increasing cost:
//!
//! 1. [`chung_garey_bound`] — the trivial bound `⌊(n−f−2)/(k−f)⌋ + 1`
//!    (Chung & Garey); loose but O(1);
//! 2. [`crate::disjoint_paths::fault_diameter_bound`] — the paper's
//!    min-sum heuristic `δ̂_f`;
//! 3. [`exact_fault_diameter`] — exhaustive enumeration of all
//!    `C(n, f)` failure sets; exponential, for validation on small graphs.

use crate::digraph::{Digraph, NodeId};
use crate::traversal::bfs_distances_avoiding;

/// Chung & Garey's generic fault-diameter bound
/// `D_f(G,f) ≤ ⌊(n−f−2)/(k−f)⌋ + 1` for `f < k` ([15, Theorem 6] in the
/// paper). Neither tight nor diameter-relative, but always valid.
pub fn chung_garey_bound(n: usize, k: usize, f: usize) -> Option<usize> {
    if f >= k || n < f + 2 {
        return None;
    }
    Some((n - f - 2) / (k - f) + 1)
}

/// Diameter of `G` after removing exactly the vertices in `failed`;
/// `None` if the survivor digraph is disconnected (which cannot happen for
/// `|failed| < k(G)`).
pub fn surviving_diameter(g: &Digraph, failed: &[NodeId]) -> Option<usize> {
    let n = g.order();
    let mut removed = vec![false; n];
    for &v in failed {
        removed[v as usize] = true;
    }
    let alive: Vec<NodeId> = g.vertices().filter(|&v| !removed[v as usize]).collect();
    if alive.len() <= 1 {
        return Some(0);
    }
    let mut diam = 0u32;
    for &s in &alive {
        let dist = bfs_distances_avoiding(g, s, &removed);
        for &t in &alive {
            let d = dist[t as usize];
            if d == u32::MAX {
                return None;
            }
            diam = diam.max(d);
        }
    }
    Some(diam as usize)
}

/// Exact `D_f(G, f)` by enumerating every `f`-subset of vertices.
/// `C(n, f)` BFS sweeps — use only for validation (`n ≲ 16`, `f ≲ 3` keeps
/// this in the thousands of sweeps).
///
/// Returns `None` if some failure set disconnects the survivors, i.e.
/// `f ≥ k(G)`.
pub fn exact_fault_diameter(g: &Digraph, f: usize) -> Option<usize> {
    let n = g.order();
    assert!(f < n, "cannot fail all vertices");
    let mut subset: Vec<NodeId> = (0..f as NodeId).collect();
    let mut worst = g.diameter()?;
    if f == 0 {
        return Some(worst);
    }
    loop {
        worst = worst.max(surviving_diameter(g, &subset)?);
        // Next combination in lexicographic order.
        let mut i = f;
        loop {
            if i == 0 {
                return Some(worst);
            }
            i -= 1;
            if subset[i] < (n - f + i) as NodeId {
                subset[i] += 1;
                for j in i + 1..f {
                    subset[j] = subset[j - 1] + 1;
                }
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binomial::binomial_graph;
    use crate::disjoint_paths::fault_diameter_bound;
    use crate::gs::gs_digraph;
    use crate::standard::{complete_digraph, hypercube_digraph};

    #[test]
    fn chung_garey_examples() {
        // n=8, k=3, f=2: ⌊(8-2-2)/(3-2)⌋+1 = 5.
        assert_eq!(chung_garey_bound(8, 3, 2), Some(5));
        assert_eq!(chung_garey_bound(8, 3, 3), None);
        assert_eq!(chung_garey_bound(3, 2, 1), Some(1));
    }

    #[test]
    fn complete_graph_fault_diameter_is_one() {
        let g = complete_digraph(6);
        for f in 0..4 {
            assert_eq!(exact_fault_diameter(&g, f), Some(1));
        }
    }

    #[test]
    fn hypercube_fault_diameter() {
        // Q3: D = 3, k = 3. Known: fault diameter of hypercube Q_n with
        // n-1 faults is n+1... for f=1 it is D+1 = 4 in the worst case.
        let g = hypercube_digraph(3);
        let d1 = exact_fault_diameter(&g, 1).unwrap();
        assert!((3..=4).contains(&d1), "Q3 with 1 fault: {d1}");
        // f = k disconnects some survivor pair's paths? Not necessarily
        // disconnected, but liveness bound applies to f < k only.
    }

    #[test]
    fn exact_matches_minsum_bound_on_binomial_8() {
        let g = binomial_graph(8); // d = k = 5
        for f in [1usize, 2] {
            let exact = exact_fault_diameter(&g, f).unwrap();
            let (_, heuristic_upper) = fault_diameter_bound(&g, f).unwrap();
            assert!(
                exact <= heuristic_upper,
                "f={f}: exact {exact} > heuristic upper bound {heuristic_upper}"
            );
        }
    }

    #[test]
    fn gs_8_3_fault_diameter_small() {
        let g = gs_digraph(8, 3).unwrap(); // D = 2, k = 3
        let d1 = exact_fault_diameter(&g, 1).unwrap();
        let d2 = exact_fault_diameter(&g, 2).unwrap();
        assert!(d1 >= 2);
        assert!(d2 >= d1, "fault diameter must be monotone in f");
        // The min-sum upper bound must dominate the exact value.
        let (_, up2) = fault_diameter_bound(&g, 2).unwrap();
        assert!(d2 <= up2);
    }

    #[test]
    fn surviving_diameter_none_when_disconnected() {
        let g = crate::standard::ring_digraph(5);
        assert_eq!(surviving_diameter(&g, &[2]), None);
    }

    #[test]
    fn surviving_diameter_zero_fail_matches_diameter() {
        let g = binomial_graph(9);
        assert_eq!(surviving_diameter(&g, &[]), g.diameter());
    }
}
