//! Moore bound for digraph diameter.
//!
//! A `d`-regular digraph reaches at most `1 + d + d² + … + d^D` vertices
//! within `D` hops, so `n ≤ (d^{D+1} − 1)/(d − 1)`; inverting gives the
//! diameter lower bound the paper uses in Table 3:
//! `D_L(n,d) = ⌈log_d(n(d−1) + d)⌉ − 1`.

/// `D_L(n, d)`: minimum possible diameter of any `d`-regular digraph on
/// `n` vertices. GS(n,d) is *quasiminimal*: within `D_L + 1` for
/// `n ≤ d³ + d` (§4.4).
pub fn moore_diameter_lower_bound(n: usize, d: usize) -> usize {
    assert!(d >= 2, "Moore bound needs d >= 2");
    if n <= 1 {
        return 0;
    }
    // Invert n ≤ (d^{D+1} − 1)/(d − 1), i.e. n(d−1) + 1 ≤ d^{D+1}, in
    // exact integer arithmetic. (The paper prints the equivalent
    // ⌈log_d(n(d−1)+d)⌉ − 1, which differs only at exact Moore sizes,
    // where the closed form over-counts by one.)
    let target = (n as u128) * (d as u128 - 1) + 1;
    let mut power = 1u128;
    let mut exp = 0usize;
    while power < target {
        power = power.saturating_mul(d as u128);
        exp += 1;
    }
    // exp = ⌈log_d target⌉ (power == target counts exactly).
    exp - 1
}

/// Maximum number of vertices a `d`-regular digraph of diameter `dia` can
/// have (the directed Moore bound): `1 + d + … + d^dia`.
pub fn moore_vertex_bound(d: usize, dia: usize) -> u128 {
    let mut total = 1u128;
    let mut term = 1u128;
    for _ in 0..dia {
        term = term.saturating_mul(d as u128);
        total = total.saturating_add(term);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_lower_bounds() {
        // D_L column of Table 3.
        let rows: &[(usize, usize, usize)] = &[
            (6, 3, 2),
            (8, 3, 2),
            (11, 3, 2),
            (16, 4, 2),
            (22, 4, 3),
            (32, 4, 3),
            (45, 4, 3),
            (64, 5, 3),
            (90, 5, 3),
            (128, 5, 3),
            (256, 7, 3),
            (512, 8, 3),
            (1024, 11, 3),
        ];
        for &(n, d, dl) in rows {
            assert_eq!(moore_diameter_lower_bound(n, d), dl, "D_L({n},{d}) should be {dl}");
        }
    }

    #[test]
    fn moore_bound_consistency() {
        // n within the Moore bound for D_L but not for D_L - 1.
        for &(n, d) in &[(90usize, 5usize), (256, 7), (1024, 11)] {
            let dl = moore_diameter_lower_bound(n, d);
            assert!(moore_vertex_bound(d, dl) >= n as u128);
            if dl > 0 {
                assert!(moore_vertex_bound(d, dl - 1) < n as u128);
            }
        }
    }

    #[test]
    fn exact_power_edge_case() {
        // n = 1 + d: diameter 1 complete-ish case.
        assert_eq!(moore_diameter_lower_bound(4, 3), 1);
        assert_eq!(moore_diameter_lower_bound(5, 3), 2);
        assert_eq!(moore_diameter_lower_bound(13, 3), 2); // 1+3+9 = 13 exactly
        assert_eq!(moore_diameter_lower_bound(14, 3), 3);
    }

    #[test]
    fn trivial_sizes() {
        assert_eq!(moore_diameter_lower_bound(1, 3), 0);
        assert_eq!(moore_diameter_lower_bound(2, 3), 1);
    }
}
