//! Generalized de Bruijn digraphs and the self-loop→cycle rewrite `G*_B`.
//!
//! GS(n,d) (§4.4) is built as the line digraph of a *generalized de Bruijn
//! digraph* `G_B(m,d)` (Du & Hwang) whose self-loops have been replaced by
//! cycles. `G_B(m,d)` and `G*_B(m,d)` are multigraphs — parallel edges
//! matter because every edge copy becomes a distinct vertex of the line
//! digraph — so this module carries explicit edge lists with multiplicity.

use crate::GraphError;

/// A directed multigraph: `n` vertices, edge list with multiplicity.
/// Only the GS construction needs this; the rest of the crate works with
/// simple [`crate::Digraph`]s.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MultiDigraph {
    n: usize,
    edges: Vec<(u32, u32)>,
}

impl MultiDigraph {
    /// Create with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        MultiDigraph { n, edges: Vec::new() }
    }

    /// Number of vertices.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Edge list (with multiplicity, in insertion order).
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Append an edge (parallel edges and self-loops allowed).
    pub fn add_edge(&mut self, u: u32, v: u32) {
        debug_assert!((u as usize) < self.n && (v as usize) < self.n);
        self.edges.push((u, v));
    }

    /// Out-degree of `v`, counting multiplicity.
    pub fn out_degree(&self, v: u32) -> usize {
        self.edges.iter().filter(|&&(u, _)| u == v).count()
    }

    /// In-degree of `v`, counting multiplicity.
    pub fn in_degree(&self, v: u32) -> usize {
        self.edges.iter().filter(|&&(_, w)| w == v).count()
    }

    /// Number of self-loops at `v`.
    pub fn self_loops(&self, v: u32) -> usize {
        self.edges.iter().filter(|&&(u, w)| u == v && w == v).count()
    }

    /// Whether every vertex has in- and out-degree exactly `d`.
    pub fn is_regular(&self, d: usize) -> bool {
        (0..self.n as u32).all(|v| self.out_degree(v) == d && self.in_degree(v) == d)
    }
}

/// The generalized de Bruijn digraph `G_B(m, d)`:
/// vertices `0..m`, edges `(u, u·d + a mod m)` for `a = 0..d` — a multiset
/// of exactly `m·d` edges, including self-loops.
pub fn generalized_de_bruijn(m: usize, d: usize) -> Result<MultiDigraph, GraphError> {
    if m < 2 || d < 1 {
        return Err(GraphError::InvalidParameters(format!(
            "G_B(m,d) requires m >= 2 and d >= 1, got m={m}, d={d}"
        )));
    }
    let mut g = MultiDigraph::new(m);
    for u in 0..m as u64 {
        for a in 0..d as u64 {
            g.add_edge(u as u32, ((u * d as u64 + a) % m as u64) as u32);
        }
    }
    Ok(g)
}

/// `G*_B(m, d)`: `G_B(m, d)` with its self-loops removed and replaced by
/// cycles (§4.4):
///
/// * every vertex has at least `⌊d/m⌋` self-loops — remove `⌊d/m⌋` from
///   every vertex and add `⌊d/m⌋` Hamiltonian cycles `0→1→…→m−1→0`;
/// * the vertices with `⌈d/m⌉` self-loops (at least `0` and `m−1` whenever
///   `d mod m ≠ 0`) each keep one extra loop — remove those and connect
///   exactly these vertices by one additional cycle, in ascending order.
///
/// The result is a `d`-regular multigraph without self-loops.
pub fn de_bruijn_star(m: usize, d: usize) -> Result<MultiDigraph, GraphError> {
    let gb = generalized_de_bruijn(m, d)?;
    let floor_loops = d / m;
    let rem = d % m;

    let mut g = MultiDigraph::new(m);
    let mut extra_loop_vertices: Vec<u32> = Vec::new();
    for v in 0..m as u32 {
        let loops = gb.self_loops(v);
        debug_assert!(
            loops == floor_loops || loops == floor_loops + 1,
            "self-loop count {loops} at {v} outside {{⌊d/m⌋, ⌈d/m⌉}}"
        );
        if rem != 0 && loops == floor_loops + 1 {
            extra_loop_vertices.push(v);
        }
    }
    if rem != 0 {
        debug_assert!(
            extra_loop_vertices.len() >= 2,
            "paper guarantees >= 2 vertices with ⌈d/m⌉ self-loops"
        );
        debug_assert!(extra_loop_vertices.contains(&0));
        debug_assert!(extra_loop_vertices.contains(&(m as u32 - 1)));
    }

    // Copy every non-self-loop edge.
    for &(u, v) in gb.edges() {
        if u != v {
            g.add_edge(u, v);
        }
    }
    // ⌊d/m⌋ Hamiltonian cycles replacing the base self-loops.
    for _ in 0..floor_loops {
        for u in 0..m as u32 {
            g.add_edge(u, (u + 1) % m as u32);
        }
    }
    // One cycle through the vertices that had an extra self-loop.
    if rem != 0 {
        let s = &extra_loop_vertices;
        for i in 0..s.len() {
            g.add_edge(s[i], s[(i + 1) % s.len()]);
        }
    }

    debug_assert!(g.is_regular(d), "G*_B(m={m}, d={d}) must be {d}-regular");
    debug_assert!((0..m as u32).all(|v| g.self_loops(v) == 0));
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gb_edge_count() {
        let g = generalized_de_bruijn(5, 3).unwrap();
        assert_eq!(g.edges().len(), 15);
        assert!(g.is_regular(3));
    }

    #[test]
    fn gb_rejects_bad_params() {
        assert!(generalized_de_bruijn(1, 3).is_err());
        assert!(generalized_de_bruijn(4, 0).is_err());
    }

    #[test]
    fn gb_classic_de_bruijn_case() {
        // m = d² gives the classic de Bruijn digraph B(d, 2); every vertex
        // has 0 or 1 self-loops, and exactly d vertices have one.
        let g = generalized_de_bruijn(9, 3).unwrap();
        let loops: usize = (0..9).map(|v| g.self_loops(v)).sum();
        assert_eq!(loops, 3); // u·3 + a ≡ u mod 9 → 2u ≡ -a; solutions: 3.
    }

    #[test]
    fn gb_self_loop_bounds_hold() {
        for (m, d) in [(2, 3), (3, 3), (2, 4), (5, 4), (7, 3), (4, 8)] {
            let g = generalized_de_bruijn(m, d).unwrap();
            let floor = d / m;
            for v in 0..m as u32 {
                let l = g.self_loops(v);
                assert!(
                    l == floor || l == floor + (usize::from(d % m != 0)),
                    "m={m} d={d} v={v}: loops={l}"
                );
            }
            if d % m != 0 {
                assert!(g.self_loops(0) == floor + 1, "vertex 0 must have ⌈d/m⌉ loops");
                assert!(
                    g.self_loops(m as u32 - 1) == floor + 1,
                    "vertex m-1 must have ⌈d/m⌉ loops"
                );
            }
        }
    }

    #[test]
    fn star_regular_no_loops() {
        for (m, d) in [(2, 3), (3, 3), (2, 4), (5, 4), (7, 3), (4, 8), (18, 5), (12, 3)] {
            let g = de_bruijn_star(m, d).unwrap();
            assert!(g.is_regular(d), "G*_B({m},{d}) not {d}-regular");
            for v in 0..m as u32 {
                assert_eq!(g.self_loops(v), 0, "G*_B({m},{d}) has self-loop at {v}");
            }
            assert_eq!(g.edges().len(), m * d);
        }
    }

    #[test]
    fn star_preserves_non_loop_edges() {
        let gb = generalized_de_bruijn(5, 3).unwrap();
        let star = de_bruijn_star(5, 3).unwrap();
        for &(u, v) in gb.edges() {
            if u != v {
                assert!(star.edges().contains(&(u, v)), "lost edge ({u},{v})");
            }
        }
    }

    #[test]
    fn multidigraph_degree_counting() {
        let mut g = MultiDigraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        g.add_edge(2, 2);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(1), 2);
        assert_eq!(g.self_loops(2), 1);
        assert!(!g.is_regular(2));
    }
}
