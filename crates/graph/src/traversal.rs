//! Breadth-first traversal, shortest paths, diameter, and strong
//! connectivity (Tarjan SCC).
//!
//! These primitives back most analyses in the crate: the diameter `D(G)`
//! bounds failure-free agreement depth (§4.2.1), and strong connectivity is
//! the liveness precondition for Algorithm 1 (§3.3.1).

use crate::digraph::{Digraph, NodeId};
use std::collections::VecDeque;

/// BFS distances (in hops) from `src` to every vertex; `u32::MAX` marks
/// unreachable vertices.
pub fn bfs_distances(g: &Digraph, src: NodeId) -> Vec<u32> {
    let mut dist = vec![u32::MAX; g.order()];
    let mut queue = VecDeque::with_capacity(g.order());
    dist[src as usize] = 0;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in g.successors(u) {
            if dist[v as usize] == u32::MAX {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// BFS distances from `src` avoiding a set of removed vertices (used by the
/// exact fault-diameter computation). `src` itself must not be removed.
pub fn bfs_distances_avoiding(g: &Digraph, src: NodeId, removed: &[bool]) -> Vec<u32> {
    debug_assert!(!removed[src as usize]);
    let mut dist = vec![u32::MAX; g.order()];
    let mut queue = VecDeque::new();
    dist[src as usize] = 0;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in g.successors(u) {
            if !removed[v as usize] && dist[v as usize] == u32::MAX {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// One shortest path from `src` to `dst`, as a vertex sequence including
/// both endpoints, or `None` if unreachable.
pub fn shortest_path(g: &Digraph, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
    if src == dst {
        return Some(vec![src]);
    }
    let mut parent = vec![u32::MAX; g.order()];
    let mut queue = VecDeque::new();
    parent[src as usize] = src;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        for &v in g.successors(u) {
            if parent[v as usize] == u32::MAX {
                parent[v as usize] = u;
                if v == dst {
                    let mut path = vec![dst];
                    let mut cur = dst;
                    while cur != src {
                        cur = parent[cur as usize];
                        path.push(cur);
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(v);
            }
        }
    }
    None
}

/// `D(G)`: the longest shortest path over all ordered pairs, or `None` if
/// `G` is not strongly connected (§2.1.1).
pub fn diameter(g: &Digraph) -> Option<usize> {
    let n = g.order();
    if n <= 1 {
        return Some(0);
    }
    let mut diam = 0u32;
    for src in g.vertices() {
        let dist = bfs_distances(g, src);
        for (v, &d) in dist.iter().enumerate() {
            if d == u32::MAX {
                debug_assert!(v != src as usize || n == 1);
                return None;
            }
            diam = diam.max(d);
        }
    }
    Some(diam as usize)
}

/// Eccentricity of `src`: the longest shortest path out of `src`, or `None`
/// if some vertex is unreachable.
pub fn eccentricity(g: &Digraph, src: NodeId) -> Option<usize> {
    let dist = bfs_distances(g, src);
    let mut ecc = 0u32;
    for &d in &dist {
        if d == u32::MAX {
            return None;
        }
        ecc = ecc.max(d);
    }
    Some(ecc as usize)
}

/// Whether `G` is strongly connected: one vertex reaches all others in both
/// `G` and its transpose. O(n + m).
pub fn is_strongly_connected(g: &Digraph) -> bool {
    let n = g.order();
    if n <= 1 {
        return true;
    }
    let reaches_all = |g: &Digraph| bfs_distances(g, 0).iter().all(|&d| d != u32::MAX);
    reaches_all(g) && reaches_all(&g.transpose())
}

/// Strongly connected components via Tarjan's algorithm (iterative —
/// overlays can be deep enough to overflow a recursive stack). Returns, for
/// each vertex, its component id; ids are assigned in reverse topological
/// order of the condensation.
///
/// The eventually-perfect-FD mode uses SCCs to identify the *surviving
/// partition* (§3.3.2).
pub fn strongly_connected_components(g: &Digraph) -> Vec<u32> {
    let n = g.order();
    let mut comp = vec![u32::MAX; n];
    let mut index = vec![u32::MAX; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut next_index = 0u32;
    let mut next_comp = 0u32;

    // Explicit DFS frame: (vertex, position in its successor list).
    let mut frames: Vec<(NodeId, usize)> = Vec::new();

    for root in g.vertices() {
        if index[root as usize] != u32::MAX {
            continue;
        }
        frames.push((root, 0));
        index[root as usize] = next_index;
        lowlink[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;

        while let Some(&mut (v, ref mut i)) = frames.last_mut() {
            let succs = g.successors(v);
            if *i < succs.len() {
                let w = succs[*i];
                *i += 1;
                if index[w as usize] == u32::MAX {
                    index[w as usize] = next_index;
                    lowlink[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    frames.push((w, 0));
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        comp[w as usize] = next_comp;
                        if w == v {
                            break;
                        }
                    }
                    next_comp += 1;
                }
            }
        }
    }
    comp
}

/// Size of the largest strongly connected component.
pub fn largest_scc_size(g: &Digraph) -> usize {
    let comp = strongly_connected_components(g);
    // Component ids are dense (0..#components), so a Vec of counts
    // tallies them without hash-order dependence.
    let ncomp = comp.iter().map(|&c| c as usize + 1).max().unwrap_or(0);
    let mut counts = vec![0usize; ncomp];
    for c in comp {
        counts[c as usize] += 1;
    }
    counts.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::DigraphBuilder;
    use crate::standard::{complete_digraph, ring_digraph};

    #[test]
    fn bfs_on_ring() {
        let g = ring_digraph(5);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bfs_unreachable() {
        let mut b = DigraphBuilder::new(3);
        b.add_edge(0, 1);
        let g = b.build();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[2], u32::MAX);
    }

    #[test]
    fn diameter_ring() {
        assert_eq!(diameter(&ring_digraph(6)), Some(5));
    }

    #[test]
    fn diameter_complete() {
        assert_eq!(diameter(&complete_digraph(7)), Some(1));
    }

    #[test]
    fn diameter_disconnected_is_none() {
        let mut b = DigraphBuilder::new(2);
        b.add_edge(0, 1);
        assert_eq!(diameter(&b.build()), None);
    }

    #[test]
    fn diameter_trivial() {
        assert_eq!(diameter(&DigraphBuilder::new(1).build()), Some(0));
        assert_eq!(diameter(&DigraphBuilder::new(0).build()), Some(0));
    }

    #[test]
    fn shortest_path_endpoints() {
        let g = ring_digraph(5);
        let p = shortest_path(&g, 1, 4).unwrap();
        assert_eq!(p, vec![1, 2, 3, 4]);
        assert_eq!(shortest_path(&g, 2, 2).unwrap(), vec![2]);
    }

    #[test]
    fn shortest_path_none_when_unreachable() {
        let mut b = DigraphBuilder::new(3);
        b.add_edge(0, 1);
        assert!(shortest_path(&b.build(), 1, 0).is_none());
    }

    #[test]
    fn strong_connectivity_ring_vs_path() {
        assert!(is_strongly_connected(&ring_digraph(4)));
        let mut b = DigraphBuilder::new(3);
        b.add_edge(0, 1).add_edge(1, 2);
        assert!(!is_strongly_connected(&b.build()));
    }

    #[test]
    fn scc_two_components() {
        // Two 2-cycles joined by a one-way bridge.
        let mut b = DigraphBuilder::new(4);
        b.add_bidirectional(0, 1);
        b.add_bidirectional(2, 3);
        b.add_edge(1, 2);
        let comp = strongly_connected_components(&b.build());
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
    }

    #[test]
    fn scc_singletons_in_dag() {
        let mut b = DigraphBuilder::new(3);
        b.add_edge(0, 1).add_edge(1, 2);
        let comp = strongly_connected_components(&b.build());
        assert_ne!(comp[0], comp[1]);
        assert_ne!(comp[1], comp[2]);
    }

    #[test]
    fn largest_scc_of_complete() {
        assert_eq!(largest_scc_size(&complete_digraph(6)), 6);
    }

    #[test]
    fn eccentricity_ring() {
        let g = ring_digraph(5);
        assert_eq!(eccentricity(&g, 0), Some(4));
    }

    #[test]
    fn bfs_avoiding_blocks_paths() {
        let g = ring_digraph(5);
        let mut removed = vec![false; 5];
        removed[1] = true;
        let d = bfs_distances_avoiding(&g, 0, &removed);
        // 0 can reach nobody else: the only outgoing edge goes through 1.
        assert_eq!(d[2], u32::MAX);
        assert_eq!(d[0], 0);
    }

    #[test]
    fn tarjan_handles_deep_path_iteratively() {
        // A long path would overflow a recursive Tarjan; the iterative one
        // must handle it.
        let n = 200_000;
        let mut b = DigraphBuilder::new(n);
        for i in 0..(n - 1) as u32 {
            b.add_edge(i, i + 1);
        }
        let comp = strongly_connected_components(&b.build());
        assert_eq!(comp.len(), n);
    }
}
