//! Vertex connectivity `k(G)` via max-flow (Menger's theorem, §2.1.1).
//!
//! `k(G)` bounds AllConcur's fault tolerance: the algorithm is
//! `f`-resilient for every `f < k(G)`, and digraphs with `k(G) = d(G)` are
//! *optimally connected* — both binomial graphs and GS(n,d) are.
//!
//! Method: by Menger, the maximum number of internally vertex-disjoint
//! `u→v` paths equals the minimum `u→v` vertex cut. We compute it as
//! max-flow on the vertex-split network (each `w` becomes `w_in → w_out`
//! with capacity 1; each edge `(a,b)` becomes `a_out → b_in` with capacity
//! `n`). Dinic's algorithm; flow values are at most `d`, so each pair
//! costs `O(d · m)`.
//!
//! Global connectivity uses the classical Even-style reduction: a minimum
//! vertex cut has at most `δ` vertices, so among any `δ+1` fixed vertices
//! at least one lies outside the cut and is separated from some other
//! vertex; it suffices to compute `λ(v_i, u)` and `λ(u, v_i)` for the
//! first `δ+1` vertices `v_i` against all non-adjacent `u`.

use crate::digraph::{Digraph, NodeId};

/// Dense-capacity Dinic max-flow on a small network.
pub(crate) struct Dinic {
    // Adjacency as index lists into `to`/`cap`; reverse edge is `e ^ 1`.
    head: Vec<Vec<u32>>,
    to: Vec<u32>,
    cap: Vec<i64>,
    level: Vec<i32>,
    iter: Vec<usize>,
}

impl Dinic {
    pub(crate) fn new(n: usize) -> Self {
        Dinic {
            head: vec![Vec::new(); n],
            to: Vec::new(),
            cap: Vec::new(),
            level: vec![0; n],
            iter: vec![0; n],
        }
    }

    pub(crate) fn add_edge(&mut self, u: usize, v: usize, c: i64) {
        let e = self.to.len() as u32;
        self.head[u].push(e);
        self.to.push(v as u32);
        self.cap.push(c);
        self.head[v].push(e + 1);
        self.to.push(u as u32);
        self.cap.push(0);
    }

    fn bfs(&mut self, s: usize, t: usize) -> bool {
        self.level.iter_mut().for_each(|l| *l = -1);
        let mut queue = std::collections::VecDeque::new();
        self.level[s] = 0;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &e in &self.head[u] {
                let v = self.to[e as usize] as usize;
                if self.cap[e as usize] > 0 && self.level[v] < 0 {
                    self.level[v] = self.level[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        self.level[t] >= 0
    }

    fn dfs(&mut self, u: usize, t: usize, f: i64) -> i64 {
        if u == t {
            return f;
        }
        while self.iter[u] < self.head[u].len() {
            let e = self.head[u][self.iter[u]] as usize;
            let v = self.to[e] as usize;
            if self.cap[e] > 0 && self.level[v] == self.level[u] + 1 {
                let d = self.dfs(v, t, f.min(self.cap[e]));
                if d > 0 {
                    self.cap[e] -= d;
                    self.cap[e ^ 1] += d;
                    return d;
                }
            }
            self.iter[u] += 1;
        }
        0
    }

    /// Max-flow from `s` to `t`, stopping early once `limit` is reached
    /// (connectivity only needs the min so far).
    pub(crate) fn max_flow(&mut self, s: usize, t: usize, limit: i64) -> i64 {
        let mut flow = 0;
        while flow < limit && self.bfs(s, t) {
            self.iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let f = self.dfs(s, t, limit - flow);
                if f == 0 {
                    break;
                }
                flow += f;
                if flow >= limit {
                    break;
                }
            }
        }
        flow
    }
}

/// Maximum number of internally vertex-disjoint paths from `s` to `t`
/// (`s ≠ t`), capped at `limit` for early exit. If the edge `(s,t)` exists
/// it contributes one path.
pub fn local_connectivity_capped(g: &Digraph, s: NodeId, t: NodeId, limit: usize) -> usize {
    assert_ne!(s, t);
    let n = g.order();
    // Vertex split: w_in = 2w, w_out = 2w+1.
    let inn = |w: NodeId| 2 * w as usize;
    let out = |w: NodeId| 2 * w as usize + 1;
    let mut net = Dinic::new(2 * n);
    let big = n as i64 + 1;
    for w in g.vertices() {
        // s and t are not internal vertices of any s→t path: give them
        // unbounded pass-through.
        let c = if w == s || w == t { big } else { 1 };
        net.add_edge(inn(w), out(w), c);
    }
    for (u, v) in g.edges() {
        // Unit edge capacity: vertex-disjoint paths cannot share an edge
        // anyway, and this stops the direct (s,t) edge — whose endpoints
        // both have unbounded pass-through — from carrying several units.
        net.add_edge(out(u), inn(v), 1);
    }
    net.max_flow(out(s), inn(t), limit as i64) as usize
}

/// Maximum number of internally vertex-disjoint `s→t` paths (uncapped).
pub fn local_connectivity(g: &Digraph, s: NodeId, t: NodeId) -> usize {
    local_connectivity_capped(g, s, t, g.order())
}

/// `k(G)`: the minimum number of vertices whose removal disconnects `G`
/// or reduces it to a single vertex (§2.1.1). Returns `n − 1` for complete
/// digraphs (no vertex cut exists).
pub fn vertex_connectivity(g: &Digraph) -> usize {
    let n = g.order();
    if n <= 1 {
        return 0;
    }
    // Minimum degree upper-bounds connectivity.
    let delta = g.vertices().map(|v| g.out_degree(v).min(g.in_degree(v))).min().unwrap_or(0);
    if delta == 0 {
        return 0;
    }
    let mut best = n - 1; // complete-digraph default
                          // A min cut C has |C| = k ≤ δ < δ+1, so among v_0..v_δ at least one
                          // vertex is outside C; pairing it (in both directions) against every
                          // non-adjacent vertex finds the cut.
    let probes: Vec<NodeId> = (0..n.min(delta + 1)).map(|i| i as NodeId).collect();
    for &s in &probes {
        for t in g.vertices() {
            if t == s {
                continue;
            }
            if !g.has_edge(s, t) {
                best = best.min(local_connectivity_capped(g, s, t, best));
                if best == 0 {
                    return 0;
                }
            }
            if !g.has_edge(t, s) {
                best = best.min(local_connectivity_capped(g, t, s, best));
                if best == 0 {
                    return 0;
                }
            }
        }
    }
    best
}

/// Whether `G` stays strongly connected after removing any `f` vertices,
/// i.e. `f < k(G)`. This is AllConcur's liveness precondition (§3).
pub fn tolerates_failures(g: &Digraph, f: usize) -> bool {
    vertex_connectivity(g) > f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::DigraphBuilder;
    use crate::standard::{complete_digraph, hypercube_digraph, ring_digraph};

    #[test]
    fn ring_has_connectivity_one() {
        assert_eq!(vertex_connectivity(&ring_digraph(6)), 1);
    }

    #[test]
    fn complete_graph_connectivity() {
        assert_eq!(vertex_connectivity(&complete_digraph(5)), 4);
    }

    #[test]
    fn hypercube_connectivity_equals_dimension() {
        assert_eq!(vertex_connectivity(&hypercube_digraph(3)), 3);
        assert_eq!(vertex_connectivity(&hypercube_digraph(4)), 4);
    }

    #[test]
    fn disconnected_graph_connectivity_zero() {
        let mut b = DigraphBuilder::new(4);
        b.add_bidirectional(0, 1);
        b.add_bidirectional(2, 3);
        assert_eq!(vertex_connectivity(&b.build()), 0);
    }

    #[test]
    fn path_digraph_zero() {
        let mut b = DigraphBuilder::new(3);
        b.add_edge(0, 1).add_edge(1, 2);
        // 2 has no outgoing edges: not strongly connected.
        assert_eq!(vertex_connectivity(&b.build()), 0);
    }

    #[test]
    fn cut_vertex_detected() {
        // Two triangles sharing vertex 2: removing 2 disconnects.
        let mut b = DigraphBuilder::new(5);
        for &(u, v) in &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)] {
            b.add_bidirectional(u, v);
        }
        assert_eq!(vertex_connectivity(&b.build()), 1);
    }

    #[test]
    fn local_connectivity_counts_direct_edge() {
        let g = complete_digraph(4);
        // 3 internal-disjoint paths: direct edge + 2 two-hop paths.
        assert_eq!(local_connectivity(&g, 0, 1), 3);
    }

    #[test]
    fn local_connectivity_ring() {
        let g = ring_digraph(5);
        assert_eq!(local_connectivity(&g, 0, 3), 1);
    }

    #[test]
    fn tolerates_failures_threshold() {
        let g = hypercube_digraph(3); // k = 3
        assert!(tolerates_failures(&g, 0));
        assert!(tolerates_failures(&g, 2));
        assert!(!tolerates_failures(&g, 3));
    }

    #[test]
    fn capped_flow_stops_early() {
        let g = complete_digraph(8);
        assert_eq!(local_connectivity_capped(&g, 0, 1, 2), 2);
    }
}
