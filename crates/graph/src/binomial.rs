//! Binomial graphs (Angskun, Bosilca, Dongarra — ISPA'07).
//!
//! The paper's running example for early termination (§2.3, Fig. 2a) and
//! the comparison overlay in §4.4/Fig. 5. Vertices `p_i` and `p_j` are
//! connected iff `j = i ± 2^l (mod n)` for `0 ≤ l ≤ ⌊log₂ n⌋` — a
//! generalization of 1-way dissemination; all edges are bidirectional.

use crate::digraph::{Digraph, DigraphBuilder, NodeId};

/// Build the binomial graph on `n ≥ 2` vertices.
///
/// Degree is `|{±2^l mod n}|`, which is `2⌊log₂ n⌋ + 1` when `n` is odd and
/// one less when `2^⌊log₂ n⌋` is its own negation mod `n` (e.g. powers of
/// two); the graph is regular and optimally connected (`k = d`, per the
/// original paper).
pub fn binomial_graph(n: usize) -> Digraph {
    assert!(n >= 2, "binomial graph needs at least 2 vertices");
    let mut b = DigraphBuilder::new(n);
    let levels = (n as f64).log2().floor() as u32;
    for i in 0..n as u64 {
        for l in 0..=levels {
            let step = 1u64 << l;
            let fwd = ((i + step) % n as u64) as NodeId;
            let bwd = ((i + n as u64 - (step % n as u64)) % n as u64) as NodeId;
            b.add_edge(i as NodeId, fwd);
            b.add_edge(i as NodeId, bwd);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::vertex_connectivity;

    #[test]
    fn nine_vertices_matches_paper_example() {
        // §2.3 / Fig 2a uses a 9-vertex binomial graph: offsets ±1, ±2, ±4.
        let g = binomial_graph(9);
        assert_eq!(g.order(), 9);
        assert!(g.is_regular());
        assert_eq!(g.degree(), 6);
        let succ0 = g.successors(0);
        assert_eq!(succ0, &[1, 2, 4, 5, 7, 8]); // ±1, ±2, ±4 mod 9
    }

    #[test]
    fn twelve_vertices_matches_section_423_example() {
        // §4.2.3: n = 12, p±{1,2,4}, connectivity k = 6, diameter D = 2.
        let g = binomial_graph(12);
        assert!(g.is_regular());
        assert_eq!(g.degree(), 6);
        assert_eq!(g.diameter(), Some(2));
        assert_eq!(vertex_connectivity(&g), 6);
        assert_eq!(g.successors(0), &[1, 2, 4, 8, 10, 11]);
    }

    #[test]
    fn power_of_two_sizes() {
        let g = binomial_graph(8);
        // offsets ±1, ±2, ±4 mod 8; +4 and −4 coincide → degree 5.
        assert_eq!(g.degree(), 5);
        assert!(g.is_regular());
        assert!(g.is_strongly_connected());
    }

    #[test]
    fn smallest_binomial() {
        let g = binomial_graph(2);
        assert_eq!(g.size(), 2);
        assert!(g.is_strongly_connected());
    }

    #[test]
    fn connectivity_grows_with_size() {
        for n in [5usize, 9, 16, 25] {
            let g = binomial_graph(n);
            assert!(g.is_strongly_connected(), "n={n} disconnected");
            let k = vertex_connectivity(&g);
            assert_eq!(k, g.degree(), "binomial graph n={n} not optimally connected");
        }
    }
}
