//! Property-based tests of the digraph substrate's invariants.

use allconcur_graph::binomial::binomial_graph;
use allconcur_graph::connectivity::{local_connectivity, vertex_connectivity};
use allconcur_graph::de_bruijn::de_bruijn_star;
use allconcur_graph::digraph::DigraphBuilder;
use allconcur_graph::disjoint_paths::{are_vertex_disjoint, min_sum_disjoint_paths};
use allconcur_graph::fault_diameter::{chung_garey_bound, exact_fault_diameter};
use allconcur_graph::gs::{gs_digraph, line_digraph};
use allconcur_graph::moore::{moore_diameter_lower_bound, moore_vertex_bound};
use allconcur_graph::reliability::{binomial_tail, ReliabilityModel};
use allconcur_graph::standard::random_regular_digraph;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// GS(n,d) is always d-regular, strongly connected, with n·d edges
    /// and quasiminimal diameter within its validity range.
    #[test]
    fn gs_invariants(n in 6usize..120, d in 3usize..6) {
        prop_assume!(n >= 2 * d);
        let g = gs_digraph(n, d).unwrap();
        prop_assert_eq!(g.order(), n);
        prop_assert_eq!(g.size(), n * d);
        prop_assert!(g.is_regular());
        prop_assert_eq!(g.degree(), d);
        prop_assert!(g.is_strongly_connected());
        let diam = g.diameter().unwrap();
        let dl = moore_diameter_lower_bound(n, d);
        prop_assert!(diam >= dl);
        if n <= d * d * d + d {
            prop_assert!(diam <= dl + 1, "GS({},{}) diameter {} > D_L+1 = {}", n, d, diam, dl + 1);
        }
    }

    /// The de Bruijn rewrite is d-regular and self-loop-free for every
    /// valid (m, d).
    #[test]
    fn de_bruijn_star_invariants(m in 2usize..40, d in 1usize..9) {
        let g = de_bruijn_star(m, d).unwrap();
        prop_assert!(g.is_regular(d));
        for v in 0..m as u32 {
            prop_assert_eq!(g.self_loops(v), 0);
        }
        prop_assert_eq!(g.edges().len(), m * d);
    }

    /// Line digraphs preserve regularity and edge-to-vertex counts.
    #[test]
    fn line_digraph_of_regular_multigraph(m in 2usize..20, d in 1usize..6) {
        let star = de_bruijn_star(m, d).unwrap();
        let (line, labels) = line_digraph(&star);
        prop_assert_eq!(line.order(), m * d);
        prop_assert_eq!(labels.len(), m * d);
        prop_assert!(line.is_regular(), "line digraph of a regular multigraph is regular");
        prop_assert_eq!(line.size(), m * d * d);
    }

    /// Binomial graphs: regular, optimally connected (k = d).
    #[test]
    fn binomial_optimal_connectivity(n in 4usize..28) {
        let g = binomial_graph(n);
        prop_assert!(g.is_regular());
        prop_assert!(g.is_strongly_connected());
        prop_assert_eq!(vertex_connectivity(&g), g.degree());
    }

    /// Menger duality spot-check: the number of vertex-disjoint paths the
    /// min-cost-flow finds equals the max-flow local connectivity.
    #[test]
    fn disjoint_paths_match_local_connectivity(n in 6usize..16, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_regular_digraph(n, 3, &mut rng);
        prop_assume!(g.is_strongly_connected());
        let (s, t) = (0u32, (n - 1) as u32);
        let lambda = local_connectivity(&g, s, t);
        prop_assert!(lambda >= 1);
        // Exactly λ disjoint paths exist...
        let paths = min_sum_disjoint_paths(&g, s, t, lambda);
        prop_assert!(paths.is_some(), "λ = {} paths must exist", lambda);
        let dp = paths.unwrap();
        prop_assert!(are_vertex_disjoint(&dp.paths));
        for p in &dp.paths {
            prop_assert_eq!(*p.first().unwrap(), s);
            prop_assert_eq!(*p.last().unwrap(), t);
            for w in p.windows(2) {
                prop_assert!(g.has_edge(w[0], w[1]));
            }
        }
        // ... and λ + 1 do not.
        prop_assert!(min_sum_disjoint_paths(&g, s, t, lambda + 1).is_none());
    }

    /// Exact fault diameter respects the Chung–Garey bound and grows
    /// monotonically with f.
    #[test]
    fn fault_diameter_bounds(n in 8usize..12) {
        let g = binomial_graph(n);
        let k = vertex_connectivity(&g);
        let mut last = g.diameter().unwrap();
        for f in 0..k.min(3) {
            let df = exact_fault_diameter(&g, f).unwrap();
            prop_assert!(df >= last || f == 0, "fault diameter must not shrink");
            if let Some(cg) = chung_garey_bound(n, k, f) {
                prop_assert!(df <= cg, "exact {} > Chung–Garey {}", df, cg);
            }
            last = df;
        }
    }

    /// Transpose is an involution and preserves all degree structure.
    #[test]
    fn transpose_involution(n in 2usize..30, edges in prop::collection::vec((0u32..30, 0u32..30), 0..120)) {
        let mut b = DigraphBuilder::new(n);
        for (u, v) in edges {
            if (u as usize) < n && (v as usize) < n {
                b.add_edge(u, v);
            }
        }
        let g = b.build();
        let t = g.transpose();
        prop_assert_eq!(&t.transpose(), &g);
        prop_assert_eq!(g.size(), t.size());
        for v in g.vertices() {
            prop_assert_eq!(g.out_degree(v), t.in_degree(v));
            prop_assert_eq!(g.in_degree(v), t.out_degree(v));
        }
    }

    /// Binomial tail: monotone in k (decreasing) and p (increasing), and
    /// consistent with the complement at k = 1.
    #[test]
    fn binomial_tail_monotonicity(n in 1usize..200, k in 1usize..20, p in 1e-6f64..0.5) {
        prop_assume!(k <= n);
        let t_k = binomial_tail(n, k, p);
        prop_assert!((0.0..=1.0).contains(&t_k));
        prop_assert!(binomial_tail(n, k + 1, p) <= t_k + 1e-12);
        prop_assert!(binomial_tail(n, k, p * 1.5) >= t_k - 1e-12);
        let direct = 1.0 - (1.0 - p).powi(n as i32);
        prop_assert!((binomial_tail(n, 1, p) - direct).abs() < 1e-9);
    }

    /// Reliability in nines is monotone in connectivity and the selected
    /// GS degree always meets the target.
    #[test]
    fn degree_selection_meets_target(n in 6usize..4000, target in 3.0f64..9.0) {
        let model = ReliabilityModel::paper_default();
        if let Some(d) = allconcur_graph::choose_gs_degree(n, &model, target) {
            prop_assert!(model.nines(n, d) >= target - 0.05);
            if d > 3 {
                prop_assert!(model.nines(n, d - 1) < target - 0.05,
                    "selected degree must be minimal");
            }
        }
    }

    /// Moore bound consistency: a digraph can never beat it.
    #[test]
    fn measured_diameters_respect_moore(n in 6usize..60) {
        let g = binomial_graph(n);
        let d = g.degree();
        let diam = g.diameter().unwrap();
        prop_assert!(diam >= moore_diameter_lower_bound(n, d));
        prop_assert!(moore_vertex_bound(d, diam) >= n as u128);
    }
}
