//! §4.1's work analysis, checked against measured wire traffic:
//!
//! * failure-free: every server receives an A-broadcast copy from each of
//!   its `d` predecessors → `n²·d` BCAST copies total, zero FAILs;
//! * with `f` failures: up to `d²` notifications of each failure arrive
//!   per server, i.e. at most `f·n·d²` FAIL copies in the network, and in
//!   practice far fewer thanks to early termination.

use allconcur_graph::gs::gs_digraph;
use allconcur_sim::failure::FailurePlan;
use allconcur_sim::network::NetworkModel;
use allconcur_sim::{SimCluster, SimTime};
use bytes::Bytes;

fn payloads(n: usize) -> Vec<Bytes> {
    (0..n).map(|i| Bytes::from(vec![i as u8; 16])).collect()
}

#[test]
fn failure_free_work_is_exactly_n_squared_d() {
    for &(n, d) in &[(8usize, 3usize), (16, 4), (32, 4)] {
        let mut cluster = SimCluster::builder(gs_digraph(n, d).unwrap())
            .network(NetworkModel::ib_verbs())
            .build();
        cluster.run_round(&payloads(n)).unwrap();
        let t = cluster.traffic();
        assert_eq!(t.bcast as usize, n * n * d, "n={n}");
        assert_eq!(t.fail, 0, "n={n}: no failures, no notifications");
        assert_eq!(t.fwd + t.bwd, 0, "perfect-FD mode never sends FWD/BWD");
        assert_eq!(t.total(), cluster.messages_sent());
    }
}

#[test]
fn failure_notifications_bounded_by_f_n_d_squared() {
    let (n, d, f) = (16usize, 4usize, 2usize);
    let plan =
        FailurePlan::none().fail_at(14, SimTime::from_ns(10)).fail_at(15, SimTime::from_ns(10));
    let mut cluster = SimCluster::builder(gs_digraph(n, d).unwrap())
        .network(NetworkModel::ib_verbs())
        .fd_detection_delay(SimTime::from_us(20))
        .failures(plan)
        .build();
    cluster.run_round(&payloads(n)).unwrap();
    let t = cluster.traffic();
    assert!(t.fail > 0, "failures must generate notifications");
    let bound = (f * n * d * d) as u64;
    assert!(t.fail <= bound, "FAIL copies {} exceed §4.1 bound {bound}", t.fail);
    // Dead servers send nothing: strictly fewer BCAST copies than the
    // failure-free n²·d.
    assert!((t.bcast as usize) < n * n * d);
}

#[test]
fn ep_mode_fwd_bwd_each_flood_once() {
    use allconcur_core::config::FdMode;
    let (n, d) = (8usize, 3usize);
    let mut cluster = SimCluster::builder(gs_digraph(n, d).unwrap())
        .network(NetworkModel::ib_verbs())
        .fd_mode(FdMode::EventuallyPerfect)
        .build();
    cluster.run_round(&payloads(n)).unwrap();
    let t = cluster.traffic();
    // R-broadcast of one FWD per server floods up to n²·d copies in each
    // direction (like the BCAST flood), trimmed at the top because
    // servers that reach their majority advance rounds and drop the
    // stragglers — early termination cutting its own flood short.
    let full_flood = n * n * d;
    let min_flood = n * d; // every server at least fans out its own
    for (name, count) in [("FWD", t.fwd as usize), ("BWD", t.bwd as usize)] {
        assert!(
            (min_flood..=full_flood).contains(&count),
            "{name} copies {count} outside [{min_flood}, {full_flood}]"
        );
    }
}

#[test]
fn per_server_work_matches_model() {
    // §4.1: every server sends each of the n messages (its own included)
    // once to each of its d successors — n·d outbound copies per server,
    // and by regularity the same inbound. Average per-server traffic must
    // therefore be exactly n·d.
    let (n, d) = (16usize, 4usize);
    let mut cluster =
        SimCluster::builder(gs_digraph(n, d).unwrap()).network(NetworkModel::ib_verbs()).build();
    cluster.run_round(&payloads(n)).unwrap();
    let per_server = cluster.traffic().bcast as usize / n;
    assert_eq!(per_server, n * d);
}
