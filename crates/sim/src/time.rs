//! Simulated time: nanosecond ticks in a `u64`.
//!
//! 2⁶⁴ ns ≈ 584 years of simulated time — comfortably beyond any
//! experiment. All simulator APIs traffic in [`SimTime`] to keep units
//! impossible to confuse with wall-clock durations.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in (or duration of) simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// From nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// From microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// From milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// From seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// From fractional seconds (rounds to nanoseconds).
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "invalid duration {s}");
        SimTime((s * 1e9).round() as u64)
    }

    /// Nanosecond count.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// As fractional microseconds.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// As fractional milliseconds.
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// As fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("simulated time overflow"))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("negative simulated time"))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else if ns >= 1_000 {
            write!(f, "{:.3}µs", self.as_us_f64())
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_us(3).as_ns(), 3_000);
        assert_eq!(SimTime::from_ms(2).as_ns(), 2_000_000);
        assert_eq!(SimTime::from_secs(1).as_ns(), 1_000_000_000);
        assert_eq!(SimTime::from_secs_f64(0.5).as_ns(), 500_000_000);
        assert!((SimTime::from_ms(1500).as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_us(10);
        let b = SimTime::from_us(4);
        assert_eq!(a + b, SimTime::from_us(14));
        assert_eq!(a - b, SimTime::from_us(6));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime::from_us(14));
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn underflow_panics() {
        let _ = SimTime::from_us(1) - SimTime::from_us(2);
    }

    #[test]
    fn display_units() {
        assert_eq!(SimTime::from_ns(12).to_string(), "12ns");
        assert_eq!(SimTime::from_us(12).to_string(), "12.000µs");
        assert_eq!(SimTime::from_ms(12).to_string(), "12.000ms");
        assert_eq!(SimTime::from_secs(2).to_string(), "2.000s");
    }
}
