//! The LogP/LogGP network model (§4; reference 17 in the paper).
//!
//! A message transmission between two servers is `T(msg) = L + 2o`:
//! the sender spends `o` handing the message to its NIC, the wire adds
//! `L`, the receiver spends `o` pulling it in. Both the send-side and the
//! receive-side `o` serialise per server, which is how the paper's
//! contention terms (`o_s = o + (d−1)/2·o` while fanning out to `d`
//! successors, and the round-robin 2o-per-predecessor receive pattern of
//! Fig. 4) arise *emergently* in the simulator rather than by assumption.
//!
//! For the throughput experiments (Fig. 10) messages grow to hundreds of
//! kilobytes, where plain LogP's short-message assumption breaks; the
//! model adds the LogGP long-message term: a per-byte gap `G` so that
//! occupying cost of an `s`-byte message is `o + s·G`.

use crate::time::SimTime;
use rand::Rng;

/// Random perturbation applied to the wire latency of each message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Jitter {
    /// Fully deterministic delays.
    None,
    /// Exponentially distributed extra latency with the given mean (ns).
    /// Models OS/network queueing noise; used by the FD-accuracy
    /// experiments.
    Exponential {
        /// Mean of the added delay, in nanoseconds.
        mean_ns: f64,
    },
    /// Uniform extra latency in `[0, max_ns]`.
    Uniform {
        /// Upper bound of the added delay, in nanoseconds.
        max_ns: u64,
    },
}

impl Jitter {
    /// Sample one latency perturbation.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> SimTime {
        match *self {
            Jitter::None => SimTime::ZERO,
            Jitter::Exponential { mean_ns } => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                SimTime::from_ns((-mean_ns * u.ln()).round() as u64)
            }
            Jitter::Uniform { max_ns } => SimTime::from_ns(rng.gen_range(0..=max_ns)),
        }
    }
}

/// LogGP parameters of the simulated interconnect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    /// Wire latency `L`.
    pub latency: SimTime,
    /// Per-message CPU/NIC overhead `o`, paid once at the sender and once
    /// at the receiver.
    pub overhead: SimTime,
    /// Long-message per-byte gap `G`, in nanoseconds per byte
    /// (`0.0` recovers plain LogP). `1 / G` is the link bandwidth.
    pub gap_per_byte_ns: f64,
    /// Wire-latency jitter.
    pub jitter: Jitter,
}

impl NetworkModel {
    /// The paper's InfiniBand Verbs measurements on the IB-hsw system:
    /// `L = 1.25 µs`, `o = 0.38 µs` (Fig. 6 caption); `G` set to the
    /// 40 Gbps QDR line rate.
    pub fn ib_verbs() -> Self {
        NetworkModel {
            latency: SimTime::from_ns(1_250),
            overhead: SimTime::from_ns(380),
            gap_per_byte_ns: 0.2, // 40 Gbps = 5 GB/s = 0.2 ns/B
            jitter: Jitter::None,
        }
    }

    /// The paper's TCP (IP-over-InfiniBand) measurements on the IB-hsw
    /// system: `L = 12 µs`, `o = 1.8 µs`. The per-byte gap is calibrated
    /// so that AllConcur's peak agreement throughput at n = 8 lands on
    /// the paper's measured 8.6 Gbps (Fig. 10b), which implies ≈27 Gbps
    /// of effective IPoIB bandwidth — see EXPERIMENTS.md.
    pub fn tcp_cluster() -> Self {
        NetworkModel {
            latency: SimTime::from_us(12),
            overhead: SimTime::from_ns(1_800),
            gap_per_byte_ns: 0.3, // ≈ 27 Gbps effective IPoIB bandwidth
            jitter: Jitter::None,
        }
    }

    /// Override the per-byte gap (bandwidth calibration knob).
    pub fn with_gap_per_byte_ns(mut self, g: f64) -> Self {
        self.gap_per_byte_ns = g;
        self
    }

    /// Override the jitter model.
    pub fn with_jitter(mut self, jitter: Jitter) -> Self {
        self.jitter = jitter;
        self
    }

    /// Occupancy of one `payload_len`-byte message at a NIC: `o + s·G`.
    pub fn occupancy(&self, payload_len: usize) -> SimTime {
        self.overhead + SimTime::from_ns((payload_len as f64 * self.gap_per_byte_ns).round() as u64)
    }

    /// The short-message point-to-point time `T(msg) = L + 2o` (§4.2).
    pub fn message_time(&self) -> SimTime {
        self.latency + self.overhead + self.overhead
    }
}

/// Per-server NIC state: serialises sends and receives at the LogGP
/// occupancy. One instance per simulated server.
#[derive(Debug, Clone, Default)]
pub struct NicState {
    /// Earliest instant the send side is free.
    pub send_free: SimTime,
    /// Earliest instant the receive side is free.
    pub recv_free: SimTime,
    /// Messages sent (departures) — §2.3-style partial-broadcast failure
    /// injection counts these.
    pub sends: u64,
    /// Bytes handed to the wire.
    pub bytes_sent: u64,
}

impl NicState {
    /// Schedule a send initiated at `now` of a `len`-byte message;
    /// returns the departure time (when the wire segment begins).
    pub fn schedule_send(&mut self, now: SimTime, len: usize, model: &NetworkModel) -> SimTime {
        let start = now.max(self.send_free);
        let depart = start + model.occupancy(len);
        self.send_free = depart;
        self.sends += 1;
        self.bytes_sent += len as u64;
        depart
    }

    /// Schedule the receive of a message whose last bit hits the NIC at
    /// `arrival`; returns when the protocol layer actually sees it.
    pub fn schedule_recv(&mut self, arrival: SimTime, len: usize, model: &NetworkModel) -> SimTime {
        let start = arrival.max(self.recv_free);
        let done = start + model.occupancy(len);
        self.recv_free = done;
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn message_time_is_l_plus_2o() {
        let m = NetworkModel::tcp_cluster();
        assert_eq!(m.message_time(), SimTime::from_ns(12_000 + 2 * 1_800));
    }

    #[test]
    fn occupancy_scales_with_size() {
        let m = NetworkModel::ib_verbs();
        assert_eq!(m.occupancy(0), m.overhead);
        let big = m.occupancy(1_000_000);
        assert_eq!(big, m.overhead + SimTime::from_ns(200_000));
    }

    #[test]
    fn sender_serialises_fanout() {
        // Fanning out d messages at the same instant departs them o apart
        // — the source of the o_s contention term (§4.2.1).
        let m = NetworkModel::tcp_cluster().with_gap_per_byte_ns(0.0);
        let mut nic = NicState::default();
        let t0 = SimTime::from_us(100);
        let d1 = nic.schedule_send(t0, 64, &m);
        let d2 = nic.schedule_send(t0, 64, &m);
        let d3 = nic.schedule_send(t0, 64, &m);
        assert_eq!(d1, t0 + m.overhead);
        assert_eq!(d2, d1 + m.overhead);
        assert_eq!(d3, d2 + m.overhead);
        assert_eq!(nic.sends, 3);
    }

    #[test]
    fn receiver_serialises_bursts() {
        let m = NetworkModel::tcp_cluster().with_gap_per_byte_ns(0.0);
        let mut nic = NicState::default();
        let t = SimTime::from_us(50);
        let r1 = nic.schedule_recv(t, 64, &m);
        let r2 = nic.schedule_recv(t, 64, &m);
        assert_eq!(r1, t + m.overhead);
        assert_eq!(r2, r1 + m.overhead);
    }

    #[test]
    fn idle_nic_resets_to_now() {
        let m = NetworkModel::ib_verbs();
        let mut nic = NicState::default();
        nic.schedule_send(SimTime::from_us(1), 8, &m);
        // Long idle gap: next send starts at `now`, not at send_free.
        let depart = nic.schedule_send(SimTime::from_ms(5), 8, &m);
        assert_eq!(depart, SimTime::from_ms(5) + m.occupancy(8));
    }

    #[test]
    fn jitter_none_is_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(Jitter::None.sample(&mut rng), SimTime::ZERO);
    }

    #[test]
    fn jitter_exponential_positive_and_varied() {
        let mut rng = StdRng::seed_from_u64(7);
        let j = Jitter::Exponential { mean_ns: 1000.0 };
        let samples: Vec<u64> = (0..100).map(|_| j.sample(&mut rng).as_ns()).collect();
        let mean = samples.iter().sum::<u64>() as f64 / 100.0;
        assert!(mean > 300.0 && mean < 3000.0, "mean {mean}");
        assert!(samples.iter().any(|&s| s != samples[0]));
    }

    #[test]
    fn jitter_uniform_bounded() {
        let mut rng = StdRng::seed_from_u64(9);
        let j = Jitter::Uniform { max_ns: 500 };
        for _ in 0..100 {
            assert!(j.sample(&mut rng).as_ns() <= 500);
        }
    }
}
