//! The cluster harness: runs real [`allconcur_core::server::Server`]
//! state machines over the simulated LogGP network.
//!
//! One [`SimCluster`] owns `n` protocol state machines, their NICs, the
//! event queue, and the failure script. [`SimCluster::run_round`] drives
//! one agreement round to completion and reports per-server delivery
//! times — the *agreement latency* of §5 — plus traffic counters for the
//! throughput figures.
//!
//! Determinism: for a fixed seed and failure plan, every run is
//! bit-identical (deterministic event queue + deterministic state
//! machines + seeded jitter).

use crate::event::{EventQueue, SimEvent};
use crate::failure::{FailureEvent, FailurePlan};
use crate::fault::{FaultCmd, HeldMessage, LinkFaults};
use crate::network::{NetworkModel, NicState};
use crate::time::SimTime;
use allconcur_core::config::{Config, FdMode};
use allconcur_core::delivery::Delivery;
use allconcur_core::message::Message;
use allconcur_core::server::{Action, Event, Server, SpaceUsage};
use allconcur_core::{Round, ServerId};
use allconcur_graph::Digraph;
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Per-message wire framing overhead (length prefix), matching the TCP
/// transport's codec.
const FRAME_BYTES: usize = 4;

/// Simulation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The event queue drained before every live server delivered the
    /// round — the protocol is stuck (would mean a liveness bug or
    /// `f ≥ k(G)`).
    Stalled {
        /// Servers that had not delivered when the queue drained.
        missing: Vec<ServerId>,
        /// Round being waited for.
        round: Round,
    },
    /// The simulated deadline passed.
    DeadlineExceeded {
        /// The deadline that was exceeded.
        deadline: SimTime,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Stalled { missing, round } => {
                write!(f, "round {round} stalled; servers {missing:?} never delivered")
            }
            SimError::DeadlineExceeded { deadline } => {
                write!(f, "simulated deadline {deadline} exceeded")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Wire-message counters by protocol message type — the concrete side of
/// §4.1's work analysis (`n·d` broadcasts plus up to `d²` notifications
/// per failure, per server).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficCounters {
    /// `⟨BCAST⟩` copies on the wire.
    pub bcast: u64,
    /// `⟨FAIL⟩` notifications on the wire.
    pub fail: u64,
    /// `⟨FWD⟩` messages (◇P mode).
    pub fwd: u64,
    /// `⟨BWD⟩` messages (◇P mode).
    pub bwd: u64,
}

impl TrafficCounters {
    fn record(&mut self, msg: &Message) {
        match msg {
            Message::Bcast { .. } => self.bcast += 1,
            Message::Fail { .. } => self.fail += 1,
            Message::Fwd { .. } => self.fwd += 1,
            Message::Bwd { .. } => self.bwd += 1,
        }
    }

    /// Total messages.
    pub fn total(&self) -> u64 {
        self.bcast + self.fail + self.fwd + self.bwd
    }
}

/// Outcome of one agreement round.
#[derive(Debug, Clone)]
pub struct RoundOutcome {
    /// The round that completed.
    pub round: Round,
    /// Simulated instant the round was kicked off.
    pub start: SimTime,
    /// Per-server delivery instant (absolute). Crashed servers absent.
    pub delivery_times: BTreeMap<ServerId, SimTime>,
    /// Per-server delivered `(origin, payload)` sequences.
    pub delivered: BTreeMap<ServerId, Vec<(ServerId, Bytes)>>,
    /// Protocol messages put on the wire during the round.
    pub messages_sent: u64,
    /// Wire bytes (payload + headers + framing) during the round.
    pub bytes_sent: u64,
}

impl RoundOutcome {
    /// Latest delivery — the instant the whole system has agreed.
    pub fn end(&self) -> SimTime {
        self.delivery_times.values().copied().max().unwrap_or(self.start)
    }

    /// Agreement latency: kickoff to last delivery.
    pub fn agreement_latency(&self) -> SimTime {
        self.end() - self.start
    }

    /// Per-server latencies (kickoff to that server's delivery), in
    /// server order.
    pub fn latencies(&self) -> Vec<SimTime> {
        self.delivery_times.values().map(|&t| t - self.start).collect()
    }

    /// Bytes of application payload agreed on (sum over delivered
    /// messages of one representative server).
    pub fn agreed_payload_bytes(&self) -> usize {
        self.delivered
            .values()
            .next()
            .map(|msgs| msgs.iter().map(|(_, b)| b.len()).sum())
            .unwrap_or(0)
    }
}

/// Builder for [`SimCluster`].
pub struct SimClusterBuilder {
    graph: Arc<Digraph>,
    model: NetworkModel,
    fd_mode: FdMode,
    fd_delay: SimTime,
    seed: u64,
    start_clock: SimTime,
    failure_plan: FailurePlan,
    round_deadline: SimTime,
    track_space: bool,
    round_window: usize,
}

impl SimClusterBuilder {
    /// Simulated network parameters (default: the paper's TCP cluster).
    pub fn network(mut self, model: NetworkModel) -> Self {
        self.model = model;
        self
    }

    /// Failure-detector mode (default: perfect).
    pub fn fd_mode(mut self, mode: FdMode) -> Self {
        self.fd_mode = mode;
        self
    }

    /// Detection delay `Δ_to` between a crash and its successors'
    /// suspicions (default 100 ms — the paper's Fig. 7 setting).
    pub fn fd_detection_delay(mut self, delay: SimTime) -> Self {
        self.fd_delay = delay;
        self
    }

    /// RNG seed for jitter and failure sampling.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Initial simulated clock (for stitching timeline segments).
    pub fn start_clock(mut self, at: SimTime) -> Self {
        self.start_clock = at;
        self
    }

    /// Scripted crashes.
    pub fn failures(mut self, plan: FailurePlan) -> Self {
        self.failure_plan = plan;
        self
    }

    /// Per-round simulated-time budget (default 600 s of simulated time).
    pub fn round_deadline(mut self, deadline: SimTime) -> Self {
        self.round_deadline = deadline;
        self
    }

    /// Record per-server space-usage peaks after every protocol event
    /// (Table 2 instrumentation; small per-event cost).
    pub fn track_space(mut self, on: bool) -> Self {
        self.track_space = on;
        self
    }

    /// Round-pipelining window `W` (default 1 — sequential rounds): how
    /// many consecutive rounds each server keeps in flight concurrently.
    pub fn round_window(mut self, window: usize) -> Self {
        self.round_window = window.max(1);
        self
    }

    /// Construct the cluster.
    pub fn build(self) -> SimCluster {
        let n = self.graph.order();
        let k = allconcur_graph::connectivity::vertex_connectivity(&self.graph);
        let cfg = Config {
            graph: self.graph,
            resilience: k.saturating_sub(1),
            fd_mode: self.fd_mode,
            round_window: self.round_window,
        };
        let servers: Vec<Server> =
            (0..n as ServerId).map(|i| Server::new(cfg.clone(), i)).collect();
        let mut cluster = SimCluster {
            cfg,
            model: self.model,
            servers,
            crashed: vec![false; n],
            crash_times: vec![None; n],
            nics: vec![NicState::default(); n],
            queue: EventQueue::new(),
            clock: self.start_clock,
            rng: StdRng::seed_from_u64(self.seed),
            fd_delay: self.fd_delay,
            partial_fails: BTreeMap::new(),
            delivered: vec![BTreeMap::new(); n],
            delivery_times: vec![BTreeMap::new(); n],
            messages_sent: 0,
            bytes_sent: 0,
            traffic: TrafficCounters::default(),
            round_deadline: self.round_deadline,
            track_space: self.track_space,
            space_peaks: vec![SpaceUsage::default(); n],
            waiting_round: None,
            waiting: vec![false; n],
            waiting_count: 0,
            delivery_log: std::collections::VecDeque::new(),
            action_scratch: Vec::new(),
            faults: LinkFaults::new(),
            release_scratch: Vec::new(),
        };
        for ev in self.failure_plan.events().to_vec() {
            match ev {
                FailureEvent::At { server, at } => {
                    cluster.queue.schedule(at, SimEvent::Crash { id: server });
                }
                FailureEvent::AfterSends { server, sends } => {
                    cluster.partial_fails.insert(server, sends);
                }
            }
        }
        cluster
    }
}

/// A simulated AllConcur deployment.
pub struct SimCluster {
    cfg: Config,
    model: NetworkModel,
    servers: Vec<Server>,
    crashed: Vec<bool>,
    /// Crash instants: messages whose departure postdates the sender's
    /// crash never physically left and are dropped on arrival.
    crash_times: Vec<Option<SimTime>>,
    nics: Vec<NicState>,
    queue: EventQueue,
    clock: SimTime,
    rng: StdRng,
    fd_delay: SimTime,
    /// Sends remaining before a scripted mid-broadcast crash.
    partial_fails: BTreeMap<ServerId, u64>,
    delivered: Vec<BTreeMap<Round, Vec<(ServerId, Bytes)>>>,
    delivery_times: Vec<BTreeMap<Round, SimTime>>,
    messages_sent: u64,
    bytes_sent: u64,
    /// Per-message-type wire counters (§4.1's work accounting).
    traffic: TrafficCounters,
    round_deadline: SimTime,
    /// When set, per-server [`SpaceUsage`] peaks are folded in after
    /// every protocol event (Table 2 instrumentation).
    track_space: bool,
    space_peaks: Vec<SpaceUsage>,
    /// Round-completion accounting for [`SimCluster::run_until_round`]:
    /// servers still owing a delivery for the awaited round.
    waiting_round: Option<Round>,
    waiting: Vec<bool>,
    waiting_count: usize,
    /// Deliveries in completion order, for the incremental
    /// [`SimCluster::step_until_delivery`] driver (the `Cluster` facade's
    /// sim transport). [`SimCluster::run_round`] clears it on entry so
    /// lockstep users do not accumulate history.
    delivery_log: std::collections::VecDeque<(ServerId, Delivery)>,
    /// Reused action buffer for [`SimCluster::feed`]: one event loop,
    /// zero per-event vector allocations.
    action_scratch: Vec<Action>,
    /// Per-link fault table (partitions, drops, delay spikes, reorder
    /// bursts); every transmission routes through it.
    faults: LinkFaults,
    /// Reused buffer for messages the fault layer releases.
    release_scratch: Vec<HeldMessage>,
}

impl SimCluster {
    /// Start building a cluster over `graph`.
    pub fn builder(graph: Digraph) -> SimClusterBuilder {
        SimClusterBuilder {
            graph: Arc::new(graph),
            model: NetworkModel::tcp_cluster(),
            fd_mode: FdMode::Perfect,
            fd_delay: SimTime::from_ms(100),
            seed: 0,
            start_clock: SimTime::ZERO,
            failure_plan: FailurePlan::none(),
            round_deadline: SimTime::from_secs(600),
            track_space: false,
            round_window: 1,
        }
    }

    /// Number of configured servers.
    pub fn n(&self) -> usize {
        self.servers.len()
    }

    /// Current simulated clock.
    pub fn clock(&self) -> SimTime {
        self.clock
    }

    /// Whether `id` has crashed (simulation-level knowledge).
    pub fn is_crashed(&self, id: ServerId) -> bool {
        self.crashed[id as usize]
    }

    /// Servers that have not crashed.
    pub fn live_servers(&self) -> Vec<ServerId> {
        (0..self.n() as ServerId).filter(|&i| !self.crashed[i as usize]).collect()
    }

    /// Immutable view of a protocol state machine (Table 2 inspection).
    pub fn server(&self, id: ServerId) -> &Server {
        &self.servers[id as usize]
    }

    /// Adjust every server's round-pipelining window at runtime (takes
    /// effect deterministically, before the next scheduled event).
    pub fn set_round_window(&mut self, window: usize) {
        for server in &mut self.servers {
            server.set_round_window(window);
        }
    }

    /// Total messages placed on the wire so far.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Total wire bytes so far.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Per-message-type wire counters since construction.
    pub fn traffic(&self) -> TrafficCounters {
        self.traffic
    }

    /// Inject a (possibly false) FD suspicion: `at`'s detector will
    /// suspect `suspect` at time `when`. Used by the `◇P` tests.
    pub fn schedule_suspicion(&mut self, when: SimTime, at: ServerId, suspect: ServerId) {
        self.queue.schedule(when, SimEvent::FdSuspect { at, suspect });
    }

    /// Crash `server` at `when` (absolute simulated time).
    pub fn schedule_crash(&mut self, when: SimTime, server: ServerId) {
        self.queue.schedule(when, SimEvent::Crash { id: server });
    }

    /// Apply a link-fault command right now (at the current clock).
    /// Heals release held messages at the current instant, preserving
    /// per-link FIFO.
    pub fn inject_fault(&mut self, cmd: &FaultCmd) {
        let now = self.clock;
        self.apply_fault_at(cmd, now);
    }

    /// Apply a link-fault command at `when` (absolute simulated time).
    pub fn schedule_fault(&mut self, when: SimTime, cmd: FaultCmd) {
        self.queue.schedule(when, SimEvent::Fault { cmd });
    }

    /// Messages destroyed by probabilistic link drops so far.
    pub fn dropped_messages(&self) -> u64 {
        self.faults.dropped()
    }

    /// Messages destroyed by injected bit flips so far — each one a
    /// corruption the wire CRC detected and discarded (a flip never
    /// reaches a protocol state machine).
    pub fn flipped_messages(&self) -> u64 {
        self.faults.flipped()
    }

    /// Whether any link is partitioned or holding messages. While true,
    /// a drained event queue means "waiting for a heal", not a protocol
    /// stall — the facade's liveness diagnosis keys off this.
    pub fn faults_holding(&self) -> bool {
        self.faults.holding()
    }

    /// Whether any per-link fault is currently configured.
    pub fn link_faults_active(&self) -> bool {
        !self.faults.is_empty()
    }

    fn apply_fault_at(&mut self, cmd: &FaultCmd, now: SimTime) {
        let mut released = std::mem::take(&mut self.release_scratch);
        released.clear();
        self.faults.apply(cmd, &mut released);
        self.schedule_released(now, &mut released);
        self.release_scratch = released;
    }

    /// Release partial reorder bursts when the event queue drains, so a
    /// burst that never fills cannot strand its messages. Returns
    /// whether new events were scheduled.
    fn flush_stranded(&mut self) -> bool {
        let mut released = std::mem::take(&mut self.release_scratch);
        released.clear();
        let any = self.faults.flush_reorder_partials(&mut released);
        let now = self.clock;
        self.schedule_released(now, &mut released);
        self.release_scratch = released;
        any
    }

    /// Schedule messages the fault layer released, each at
    /// `max(arrival, now)` (insertion order breaks same-instant ties, so
    /// the layer's release order is preserved).
    fn schedule_released(&mut self, now: SimTime, released: &mut Vec<HeldMessage>) {
        for h in released.drain(..) {
            self.queue.schedule(
                h.arrival.max(now),
                SimEvent::Deliver { to: h.to, from: h.from, depart: h.depart, msg: h.msg },
            );
        }
    }

    /// Run one agreement round: every live server A-broadcasts its entry
    /// from `payloads` (indexed by server id) at the current clock, and
    /// the simulation runs until every server that is still live has
    /// delivered the round.
    pub fn run_round(&mut self, payloads: &[Bytes]) -> Result<RoundOutcome, SimError> {
        assert_eq!(payloads.len(), self.n(), "one payload per configured server");
        self.delivery_log.clear();
        let live = self.live_servers();
        assert!(!live.is_empty(), "no live servers");
        let round = self.servers[live[0] as usize].round();
        for &s in &live {
            debug_assert_eq!(self.servers[s as usize].round(), round, "live servers out of sync");
        }
        let start = self.clock;
        let msg0 = self.messages_sent;
        let bytes0 = self.bytes_sent;
        for &s in &live {
            self.queue.schedule(
                start,
                SimEvent::AppBroadcast { id: s, payload: payloads[s as usize].clone() },
            );
        }
        let deadline = start + self.round_deadline;
        self.run_until_round(round, deadline)?;

        let mut outcome = RoundOutcome {
            round,
            start,
            delivery_times: BTreeMap::new(),
            delivered: BTreeMap::new(),
            messages_sent: self.messages_sent - msg0,
            bytes_sent: self.bytes_sent - bytes0,
        };
        for s in 0..self.n() as ServerId {
            if let Some(&t) = self.delivery_times[s as usize].get(&round) {
                outcome.delivery_times.insert(s, t);
                outcome
                    .delivered
                    .insert(s, self.delivered[s as usize].get(&round).cloned().unwrap_or_default());
            }
        }
        Ok(outcome)
    }

    /// Process events until every live server has delivered `round`.
    fn run_until_round(&mut self, round: Round, deadline: SimTime) -> Result<(), SimError> {
        // Completion is tracked by a counter updated on delivery/crash, so
        // the per-event cost stays O(1) regardless of n.
        self.waiting_round = Some(round);
        self.waiting_count = 0;
        for s in 0..self.n() {
            let owes = !self.crashed[s] && !self.delivery_times[s].contains_key(&round);
            self.waiting[s] = owes;
            self.waiting_count += usize::from(owes);
        }
        let result = loop {
            if self.waiting_count == 0 {
                break Ok(());
            }
            let Some((t, ev)) = self.queue.pop() else {
                if self.flush_stranded() {
                    continue;
                }
                let missing =
                    (0..self.n() as ServerId).filter(|&s| self.waiting[s as usize]).collect();
                break Err(SimError::Stalled { missing, round });
            };
            if t > deadline {
                break Err(SimError::DeadlineExceeded { deadline });
            }
            self.clock = self.clock.max(t);
            self.process(t, ev);
        };
        self.waiting_round = None;
        result
    }

    /// Drain every pending event (e.g. to let carried-over failure
    /// notifications settle between rounds). Stops at `deadline`.
    pub fn settle(&mut self, deadline: SimTime) {
        loop {
            let Some(t) = self.queue.peek_time() else {
                if self.flush_stranded() {
                    continue;
                }
                return;
            };
            if t > deadline {
                return;
            }
            let Some((t, ev)) = self.queue.pop() else { return };
            self.clock = self.clock.max(t);
            self.process(t, ev);
        }
    }

    /// Advance the clock to `at` without processing events past it.
    pub fn advance_clock_to(&mut self, at: SimTime) {
        assert!(at >= self.clock, "clock cannot move backwards");
        self.clock = at;
    }

    /// Schedule `payload` as `origin`'s A-broadcast at the current clock.
    ///
    /// Incremental counterpart of [`SimCluster::run_round`] used by the
    /// `Cluster` facade: the caller decides when each server opens its
    /// round. A server ignores a second `ABroadcast` within one round
    /// (Algorithm 1 sends exactly one message per server per round), so
    /// callers pipelining submissions must queue them until the round
    /// advances — see `allconcur-cluster`'s sim transport.
    pub fn submit(&mut self, origin: ServerId, payload: Bytes) {
        self.queue.schedule(self.clock, SimEvent::AppBroadcast { id: origin, payload });
    }

    /// Process events until some server A-delivers a round, and return
    /// that delivery (oldest first when several complete at one event).
    ///
    /// `Ok(None)` means the event queue drained with no further delivery
    /// pending — the cluster is idle (nothing was submitted, or all
    /// submitted rounds already completed). [`SimError::DeadlineExceeded`]
    /// reports a queue that still holds work scheduled past `deadline`.
    pub fn step_until_delivery(
        &mut self,
        deadline: SimTime,
    ) -> Result<Option<(ServerId, Delivery)>, SimError> {
        loop {
            if let Some(next) = self.delivery_log.pop_front() {
                return Ok(Some(next));
            }
            let Some(t) = self.queue.peek_time() else {
                if self.flush_stranded() {
                    continue;
                }
                return Ok(None);
            };
            if t > deadline {
                return Err(SimError::DeadlineExceeded { deadline });
            }
            let Some((t, ev)) = self.queue.pop() else { return Ok(None) };
            self.clock = self.clock.max(t);
            self.process(t, ev);
        }
    }

    fn process(&mut self, t: SimTime, ev: SimEvent) {
        match ev {
            SimEvent::AppBroadcast { id, payload } => {
                if !self.crashed[id as usize] {
                    self.feed(id, Event::ABroadcast(payload), t);
                }
            }
            SimEvent::Deliver { to, from, depart, msg } => {
                // Cancelled if the sender crashed before this message's
                // NIC departure (fail-stop: nothing leaves after death).
                let sender_died_first =
                    self.crash_times[from as usize].is_some_and(|ct| ct < depart);
                if !self.crashed[to as usize] && !sender_died_first {
                    let len = msg.encoded_len() + FRAME_BYTES;
                    let done = self.nics[to as usize].schedule_recv(t, len, &self.model);
                    self.feed(to, Event::Receive { from, msg }, done);
                }
            }
            SimEvent::Crash { id } => self.crash(id, t),
            SimEvent::FdSuspect { at, suspect } => {
                if !self.crashed[at as usize] {
                    self.feed(at, Event::Suspect { suspect }, t);
                }
            }
            SimEvent::Fault { cmd } => self.apply_fault_at(&cmd, t),
        }
    }

    /// Peak space usage observed at `id` (requires
    /// [`SimClusterBuilder::track_space`]).
    pub fn space_peaks(&self, id: ServerId) -> SpaceUsage {
        self.space_peaks[id as usize]
    }

    /// Feed one protocol event to server `id` at logical time `now` and
    /// act on the outputs. The action buffer is owned by the cluster and
    /// reused across events (`handle_into`), so the steady-state event
    /// loop allocates nothing.
    fn feed(&mut self, id: ServerId, event: Event, now: SimTime) {
        let mut actions = std::mem::take(&mut self.action_scratch);
        actions.clear();
        self.servers[id as usize].handle_into(event, &mut actions);
        if self.track_space {
            let u = self.servers[id as usize].space_usage();
            let p = &mut self.space_peaks[id as usize];
            p.graph_bytes = p.graph_bytes.max(u.graph_bytes);
            p.messages = p.messages.max(u.messages);
            p.message_bytes = p.message_bytes.max(u.message_bytes);
            p.fail_notifications = p.fail_notifications.max(u.fail_notifications);
            p.tracking_digraphs = p.tracking_digraphs.max(u.tracking_digraphs);
            p.tracking_vertices = p.tracking_vertices.max(u.tracking_vertices);
            p.tracking_edges = p.tracking_edges.max(u.tracking_edges);
            p.peak_tracking_vertices = p.peak_tracking_vertices.max(u.peak_tracking_vertices);
        }
        self.apply_actions(id, &mut actions, now);
        self.action_scratch = actions;
    }

    fn apply_actions(&mut self, id: ServerId, actions: &mut Vec<Action>, now: SimTime) {
        for action in actions.drain(..) {
            match action {
                Action::Send { to, msg } => {
                    if self.crashed[id as usize] {
                        // Crashed mid-batch (partial-broadcast injection):
                        // remaining sends never happen.
                        continue;
                    }
                    self.transmit(id, to, msg, now);
                }
                Action::Deliver { round, messages } => {
                    // Lockstep drivers ([`SimCluster::run_round`]) read
                    // history out of `delivered`; the incremental facade
                    // path consumes the delivery log only, so the extra
                    // history clone is skipped there.
                    if self.waiting_round.is_some() {
                        self.delivered[id as usize].insert(round, messages.clone());
                    }
                    self.delivery_log.push_back((id, Delivery { round, messages }));
                    self.delivery_times[id as usize].insert(round, now);
                    if self.waiting_round == Some(round) && self.waiting[id as usize] {
                        self.waiting[id as usize] = false;
                        self.waiting_count -= 1;
                    }
                }
            }
        }
    }

    fn transmit(&mut self, from: ServerId, to: ServerId, msg: Message, now: SimTime) {
        let len = msg.encoded_len() + FRAME_BYTES;
        let depart = self.nics[from as usize].schedule_send(now, len, &self.model);
        self.messages_sent += 1;
        self.bytes_sent += len as u64;
        self.traffic.record(&msg);
        let jitter = self.model.jitter.sample(&mut self.rng);
        let arrival = depart + self.model.latency + jitter;
        if self.faults.is_empty() {
            self.queue.schedule(arrival, SimEvent::Deliver { to, from, depart, msg });
        } else {
            // Route through the per-link fault table: the message may be
            // held (partition / reorder burst), dropped, delayed, or
            // released together with a completed burst.
            let mut released = std::mem::take(&mut self.release_scratch);
            released.clear();
            self.faults.route(
                HeldMessage { to, from, depart, arrival, msg },
                &mut self.rng,
                &mut released,
            );
            self.schedule_released(now, &mut released);
            self.release_scratch = released;
        }

        // §2.3-style partial-broadcast crash: the k-th departure is the
        // server's last act.
        if let Some(remaining) = self.partial_fails.get_mut(&from) {
            *remaining -= 1;
            if *remaining == 0 {
                self.partial_fails.remove(&from);
                self.crash(from, depart);
            }
        }
    }

    fn crash(&mut self, id: ServerId, at: SimTime) {
        if self.crashed[id as usize] {
            return;
        }
        self.crashed[id as usize] = true;
        self.crash_times[id as usize] = Some(at);
        if self.waiting[id as usize] {
            self.waiting[id as usize] = false;
            self.waiting_count -= 1;
        }
        // Heartbeats stop; each live overlay successor's FD times out
        // Δ_to later. (Successors of `id` monitor it: they are the
        // servers with `id` as predecessor.)
        for &succ in self.cfg.graph.successors(id) {
            if !self.crashed[succ as usize] {
                self.queue
                    .schedule(at + self.fd_delay, SimEvent::FdSuspect { at: succ, suspect: id });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use allconcur_graph::binomial::binomial_graph;
    use allconcur_graph::gs::gs_digraph;
    use allconcur_graph::standard::complete_digraph;

    fn payloads(n: usize, size: usize) -> Vec<Bytes> {
        (0..n).map(|i| Bytes::from(vec![i as u8; size])).collect()
    }

    #[test]
    fn failure_free_round_on_gs83() {
        let mut cluster = SimCluster::builder(gs_digraph(8, 3).unwrap()).build();
        let out = cluster.run_round(&payloads(8, 64)).unwrap();
        assert_eq!(out.delivered.len(), 8);
        let first = &out.delivered[&0];
        assert_eq!(first.len(), 8);
        for msgs in out.delivered.values() {
            assert_eq!(msgs, first, "atomic broadcast: identical sequences");
        }
        assert!(out.agreement_latency() > SimTime::ZERO);
        // Work model sanity: each server forwards every message to d
        // successors → n·d BCASTs per origin... total n²·d messages (§4.5).
        assert_eq!(out.messages_sent, 8 * 8 * 3);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = |seed| {
            let mut c = SimCluster::builder(gs_digraph(8, 3).unwrap()).seed(seed).build();
            let out = c.run_round(&payloads(8, 64)).unwrap();
            (out.agreement_latency(), out.messages_sent, out.bytes_sent)
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn latency_grows_with_system_size() {
        let latency = |n: usize, d: usize| {
            let mut c = SimCluster::builder(gs_digraph(n, d).unwrap()).build();
            c.run_round(&payloads(n, 64)).unwrap().agreement_latency()
        };
        let small = latency(8, 3);
        let large = latency(64, 5);
        assert!(large > small, "64 servers ({large}) must beat 8 ({small})... slower");
    }

    #[test]
    fn multi_round_progression() {
        let mut cluster = SimCluster::builder(gs_digraph(8, 3).unwrap()).build();
        for round in 0..5u64 {
            let out = cluster.run_round(&payloads(8, 16)).unwrap();
            assert_eq!(out.round, round);
            assert_eq!(out.delivered[&3].len(), 8);
        }
    }

    #[test]
    fn crash_before_round_excludes_victim() {
        let mut cluster = SimCluster::builder(gs_digraph(8, 3).unwrap())
            .failures(FailurePlan::none().fail_at(5, SimTime::from_ns(1)))
            .fd_detection_delay(SimTime::from_us(50))
            .build();
        cluster.settle(SimTime::from_ms(10));
        let out = cluster.run_round(&payloads(8, 64)).unwrap();
        assert_eq!(out.delivered.len(), 7, "victim delivers nothing");
        for (&s, msgs) in &out.delivered {
            assert_ne!(s, 5);
            let origins: Vec<ServerId> = msgs.iter().map(|&(o, _)| o).collect();
            assert_eq!(origins, vec![0, 1, 2, 3, 4, 6, 7], "server {s} must exclude m5");
        }
        // Next round proceeds with 7 servers.
        let out2 = cluster.run_round(&payloads(8, 64)).unwrap();
        assert_eq!(out2.delivered.len(), 7);
        assert_eq!(out2.delivered[&0].len(), 7);
    }

    #[test]
    fn partial_broadcast_crash_still_agrees() {
        // §2.3's scenario on the paper's own 9-server binomial graph:
        // p0 crashes after sending m0 to exactly one successor. All
        // survivors must still agree — and because that successor relays
        // m0, they agree on a set that *includes* m0.
        let mut cluster = SimCluster::builder(binomial_graph(9))
            .failures(FailurePlan::none().fail_after_sends(0, 1))
            .fd_detection_delay(SimTime::from_us(30))
            .build();
        let out = cluster.run_round(&payloads(9, 32)).unwrap();
        assert_eq!(out.delivered.len(), 8);
        let reference = &out.delivered[&1];
        let origins: Vec<ServerId> = reference.iter().map(|&(o, _)| o).collect();
        assert!(origins.contains(&0), "m0 was relayed by p0's first successor");
        for msgs in out.delivered.values() {
            assert_eq!(msgs, reference, "set agreement under partial broadcast");
        }
    }

    #[test]
    fn crash_mid_round_detected_and_excluded() {
        // Crash before any send in the round (0 sends allowed): the
        // victim's message never exists; survivors agree without it after
        // the FD kicks in.
        let mut cluster = SimCluster::builder(gs_digraph(8, 3).unwrap())
            .failures(FailurePlan::none().fail_at(2, SimTime::from_ns(100)))
            .fd_detection_delay(SimTime::from_us(40))
            .build();
        let out = cluster.run_round(&payloads(8, 64)).unwrap();
        assert_eq!(out.delivered.len(), 7);
        let origins: Vec<ServerId> = out.delivered[&0].iter().map(|&(o, _)| o).collect();
        assert_eq!(origins, vec![0, 1, 3, 4, 5, 6, 7]);
        // Detection gates termination: latency at least the FD delay.
        assert!(out.agreement_latency() >= SimTime::from_us(40));
    }

    #[test]
    fn complete_digraph_tolerates_many_failures() {
        let plan = FailurePlan::none()
            .fail_at(1, SimTime::from_ns(10))
            .fail_at(2, SimTime::from_ns(10))
            .fail_at(3, SimTime::from_ns(10));
        let mut cluster = SimCluster::builder(complete_digraph(6))
            .failures(plan)
            .fd_detection_delay(SimTime::from_us(20))
            .build();
        let out = cluster.run_round(&payloads(6, 8)).unwrap();
        assert_eq!(out.delivered.len(), 3);
        let origins: Vec<ServerId> = out.delivered[&0].iter().map(|&(o, _)| o).collect();
        assert_eq!(origins, vec![0, 4, 5]);
    }

    #[test]
    fn byte_accounting_includes_payload() {
        let mut cluster = SimCluster::builder(gs_digraph(8, 3).unwrap()).build();
        let small = cluster.run_round(&payloads(8, 8)).unwrap().bytes_sent;
        let mut cluster2 = SimCluster::builder(gs_digraph(8, 3).unwrap()).build();
        let large = cluster2.run_round(&payloads(8, 4096)).unwrap().bytes_sent;
        assert!(large > 10 * small);
    }

    #[test]
    fn ib_verbs_faster_than_tcp() {
        let latency = |model: NetworkModel| {
            let mut c = SimCluster::builder(gs_digraph(8, 3).unwrap()).network(model).build();
            c.run_round(&payloads(8, 64)).unwrap().agreement_latency()
        };
        let ibv = latency(NetworkModel::ib_verbs());
        let tcp = latency(NetworkModel::tcp_cluster());
        // Fig 6: TCP ≈ 3× slower than IBV at small scale.
        assert!(tcp.as_ns() > 2 * ibv.as_ns(), "tcp {tcp} vs ibv {ibv}");
    }

    #[test]
    fn partition_delays_but_round_completes_after_heal() {
        // Partition {0..3} | {4..7} mid-deployment, schedule the heal,
        // and run a round: the round must complete (held messages release
        // at the heal), and completion must not predate the heal.
        let mut cluster = SimCluster::builder(gs_digraph(8, 3).unwrap()).build();
        let heal_at = SimTime::from_ms(5);
        cluster.inject_fault(&FaultCmd::Partition {
            groups: vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]],
        });
        cluster.schedule_fault(heal_at, FaultCmd::HealPartitions);
        let out = cluster.run_round(&payloads(8, 64)).unwrap();
        assert_eq!(out.delivered.len(), 8);
        let reference = &out.delivered[&0];
        for msgs in out.delivered.values() {
            assert_eq!(msgs, reference, "agreement across the healed partition");
        }
        assert!(out.end() >= heal_at, "cross-partition agreement cannot predate the heal");
        assert_eq!(cluster.dropped_messages(), 0, "partitions delay, they never drop");
    }

    #[test]
    fn lossy_link_survived_by_redundant_paths() {
        // Total loss on one overlay edge: every message still reaches the
        // victim through its other predecessors (the flooding redundancy
        // the paper's §2.1.1 reliability argument rests on).
        let graph = gs_digraph(8, 3).unwrap();
        let (from, to) = {
            let succs = graph.successors(0);
            (0u32, succs[0])
        };
        let mut cluster = SimCluster::builder(graph).seed(3).build();
        cluster.inject_fault(&FaultCmd::Drop { from, to, ppm: crate::fault::PPM });
        let out = cluster.run_round(&payloads(8, 32)).unwrap();
        assert_eq!(out.delivered.len(), 8);
        let reference = &out.delivered[&0];
        for msgs in out.delivered.values() {
            assert_eq!(msgs, reference, "agreement despite a fully lossy link");
        }
        assert!(cluster.dropped_messages() > 0, "the lossy link actually dropped traffic");
    }

    #[test]
    fn delay_spike_slows_agreement() {
        let base = {
            let mut c = SimCluster::builder(gs_digraph(8, 3).unwrap()).build();
            c.run_round(&payloads(8, 64)).unwrap().agreement_latency()
        };
        let mut c = SimCluster::builder(gs_digraph(8, 3).unwrap()).build();
        for to in c.cfg.graph.successors(0).to_vec() {
            c.inject_fault(&FaultCmd::Delay { from: 0, to, extra: SimTime::from_ms(1) });
        }
        let spiked = c.run_round(&payloads(8, 64)).unwrap().agreement_latency();
        assert!(spiked > base + SimTime::from_us(500), "spiked {spiked} vs base {base}");
    }

    #[test]
    fn reorder_burst_preserves_agreement() {
        let graph = gs_digraph(8, 3).unwrap();
        let to = graph.successors(2)[1];
        let mut cluster = SimCluster::builder(graph).build();
        cluster.inject_fault(&FaultCmd::Reorder { from: 2, to, burst: 6 });
        let out = cluster.run_round(&payloads(8, 16)).unwrap();
        assert_eq!(out.delivered.len(), 8);
        let reference = &out.delivered[&0];
        for msgs in out.delivered.values() {
            assert_eq!(msgs, reference, "agreement under per-link reordering");
        }
    }

    #[test]
    fn fault_free_runs_are_byte_identical_to_pre_nemesis() {
        // The fault table's fast path must not perturb the RNG stream or
        // event ordering: two clusters, one with a fault injected and
        // cleared *before* any traffic, must produce identical rounds.
        let run = |prime: bool| {
            let mut c = SimCluster::builder(gs_digraph(8, 3).unwrap()).seed(11).build();
            if prime {
                c.inject_fault(&FaultCmd::Isolate { from: 0, to: 1 });
                c.inject_fault(&FaultCmd::Clear);
            }
            let out = c.run_round(&payloads(8, 64)).unwrap();
            (out.agreement_latency(), out.messages_sent, out.bytes_sent)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn stalled_detection_when_overlay_disconnects() {
        // Ring: k = 1, so one crash breaks liveness. The run must report
        // Stalled or DeadlineExceeded, not hang: settle FD first, then the
        // round cannot complete.
        let mut cluster = SimCluster::builder(allconcur_graph::standard::ring_digraph(4))
            .failures(FailurePlan::none().fail_at(2, SimTime::from_ns(1)))
            .fd_detection_delay(SimTime::from_us(10))
            .round_deadline(SimTime::from_ms(50))
            .build();
        let res = cluster.run_round(&payloads(4, 8));
        assert!(res.is_err(), "ring with a dead vertex cannot reach agreement");
    }
}
