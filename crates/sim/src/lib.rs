#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # allconcur-sim — discrete-event LogP simulator for AllConcur
//!
//! The paper evaluates AllConcur on a 96-node InfiniBand cluster and a
//! Cray XC40 (§5). This crate substitutes a **discrete-event simulator**
//! parameterised by the paper's own LogP measurements (IBV: `L = 1.25 µs`,
//! `o = 0.38 µs`; TCP: `L = 12 µs`, `o = 1.8 µs`) — the substitution is
//! faithful because the paper itself analyses the algorithm in LogP (§4),
//! and because the simulator executes the *real* protocol state machine
//! from `allconcur-core`, not a re-abstraction of it.
//!
//! What is modelled:
//!
//! * **sender/receiver overhead and contention** — each NIC serialises
//!   message hand-offs at `o` per message (§4.2.1's `o_s` contention term
//!   emerges from the queueing rather than being assumed);
//! * **bandwidth** — an optional LogGP-style per-byte gap `G`, needed for
//!   the batching-factor throughput curves (Fig. 10);
//! * **failures** — fail-stop crashes at arbitrary instants, including
//!   mid-broadcast after a chosen number of sends (the §2.3 scenario);
//!   in-flight messages still arrive, unsent ones never depart;
//! * **failure detection** — successors of a crashed server raise
//!   suspicions after a configurable detection delay (`Δ_to`), optionally
//!   jittered; false suspicions can be injected for `◇P` testing;
//! * **link faults** ([`fault`]) — symmetric/asymmetric partitions
//!   (hold-until-heal), probabilistic message loss, per-link delay
//!   spikes, and reorder bursts, injectable at runtime or scheduled at
//!   simulated instants (the nemesis substrate).
//!
//! Entry point: [`harness::SimCluster`].

pub mod event;
pub mod failure;
pub mod fault;
pub mod harness;
pub mod logp;
pub mod network;
pub mod stats;
pub mod time;

pub use fault::FaultCmd;
pub use harness::{RoundOutcome, SimCluster, SimClusterBuilder};
pub use network::NetworkModel;
pub use time::SimTime;
