//! Per-link fault state — the nemesis side of the simulator.
//!
//! The base network model ([`crate::network`]) covers the *healthy*
//! regimes of §4: latency, overhead, bandwidth, jitter. This module adds
//! the adversarial ones: partitions (symmetric via [`FaultCmd::Partition`]
//! or asymmetric via [`FaultCmd::Isolate`]), probabilistic message loss,
//! per-link delay spikes, and reorder bursts. Each directed link
//! `(from, to)` carries its own [`LinkState`]; the harness routes every
//! transmission through [`LinkFaults::route`] before scheduling its
//! arrival.
//!
//! Two semantics matter for protocol fidelity:
//!
//! * **Partitions delay, they do not destroy.** AllConcur assumes
//!   reliable channels between correct servers (§2); a real partition
//!   shorter than the connection lifetime manifests as TCP retransmission
//!   delay, not loss. A blocked link therefore *holds* messages and
//!   releases them, per-link FIFO, when the partition heals.
//! * **Probabilistic drop genuinely loses messages.** There is no
//!   retransmission in the protocol itself; survivability comes from the
//!   overlay's redundant dissemination paths (every message traverses
//!   every edge), which is exactly the claim the loss scenarios test.
//!
//! Everything is deterministic for a fixed seed: drop decisions consume
//! the harness RNG only on links with a nonzero drop rate, so runs
//! without faults are bit-identical to the pre-nemesis simulator.

use crate::time::SimTime;
use allconcur_core::message::Message;
use allconcur_core::ServerId;
use rand::Rng;
use std::collections::BTreeMap;

/// Drop rates are expressed in parts-per-million so fault commands stay
/// `Eq`/hashable and replayable byte-for-byte from logged seeds.
pub const PPM: u32 = 1_000_000;

/// A runtime fault-injection command, applicable immediately or
/// schedulable at a simulated instant ([`crate::event::SimEvent::Fault`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultCmd {
    /// Symmetric partition: block both directions of every link between
    /// servers of *different* groups. Servers absent from every group
    /// are unaffected (list every member for a tight partition).
    Partition {
        /// The connectivity groups.
        groups: Vec<Vec<ServerId>>,
    },
    /// Asymmetric partition: block the single directed link `from → to`.
    Isolate {
        /// Sending side of the blocked link.
        from: ServerId,
        /// Receiving side of the blocked link.
        to: ServerId,
    },
    /// Unblock every blocked link and release the messages they held
    /// (per-link FIFO). Leaves drop/delay/reorder state in place.
    HealPartitions,
    /// Unblock the single directed link `from → to` and release the
    /// messages it held (FIFO). The per-link inverse of
    /// [`FaultCmd::Isolate`] — other blocked links stay blocked, and a
    /// link that was never blocked heals as a no-op. Scheduled after an
    /// `Isolate`, the pair models a transient link flap whose outage
    /// delays but never destroys (TCP-retransmission semantics).
    HealLink {
        /// Sending side of the healed link.
        from: ServerId,
        /// Receiving side of the healed link.
        to: ServerId,
    },
    /// Drop each message on `from → to` independently with probability
    /// `ppm / 1e6`. `ppm = 0` clears the fault.
    Drop {
        /// Sending side.
        from: ServerId,
        /// Receiving side.
        to: ServerId,
        /// Drop probability in parts-per-million (clamped to ≤ 1e6).
        ppm: u32,
    },
    /// Add `extra` wire latency to every message on `from → to` — a
    /// delay spike. `extra = 0` clears the fault.
    Delay {
        /// Sending side.
        from: ServerId,
        /// Receiving side.
        to: ServerId,
        /// Additional latency.
        extra: SimTime,
    },
    /// Corrupt each message on `from → to` independently with
    /// probability `ppm / 1e6`. The simulator's messages are typed (no
    /// byte encoding to flip), so a sampled corruption models the *post-
    /// detection* outcome of the wire layer: the receiver's frame CRC
    /// catches the flipped bit and discards the frame — the message is
    /// destroyed, counted in [`LinkFaults::flipped`], and never
    /// delivered corrupt. `ppm = 0` clears the fault.
    BitFlip {
        /// Sending side.
        from: ServerId,
        /// Receiving side.
        to: ServerId,
        /// Corruption probability in parts-per-million (clamped ≤ 1e6).
        ppm: u32,
    },
    /// Hold the next `burst` messages on `from → to` and release them in
    /// reverse order (oldest last) once the burst fills; a partial burst
    /// releases when the simulation would otherwise go idle.
    Reorder {
        /// Sending side.
        from: ServerId,
        /// Receiving side.
        to: ServerId,
        /// Messages to collect before the reversed release.
        burst: usize,
    },
    /// Remove every link fault (blocks, drops, delays, reorders) and
    /// release everything held.
    Clear,
}

/// One in-flight message parked inside the fault layer (a blocked link's
/// hold queue or a reorder burst).
#[derive(Debug, Clone)]
pub struct HeldMessage {
    /// Receiving server.
    pub to: ServerId,
    /// Direct overlay sender.
    pub from: ServerId,
    /// NIC departure instant (crash-cancellation checks still apply on
    /// release).
    pub depart: SimTime,
    /// Arrival instant the message would have had on a healthy link.
    pub arrival: SimTime,
    /// The protocol message.
    pub msg: Message,
}

/// Fault state of one directed link.
#[derive(Debug, Clone, Default)]
struct LinkState {
    /// Partitioned: messages are held until healed.
    blocked: bool,
    /// Per-message drop probability in parts-per-million.
    drop_ppm: u32,
    /// Per-message bit-flip probability in parts-per-million. A sampled
    /// flip is CRC-detected at the receiver and the message discarded.
    flip_ppm: u32,
    /// Delay spike added to each message's arrival.
    extra_delay: SimTime,
    /// Messages left to collect in the current reorder burst.
    reorder_left: usize,
    /// Held messages: the hold queue while blocked, or the accumulating
    /// reorder burst. (A link is never both — `blocked` wins.)
    held: Vec<HeldMessage>,
}

impl LinkState {
    /// Whether the state carries no fault and no parked messages (and
    /// can be dropped from the sparse table).
    fn is_clear(&self) -> bool {
        !self.blocked
            && self.drop_ppm == 0
            && self.flip_ppm == 0
            && self.extra_delay == SimTime::ZERO
            && self.reorder_left == 0
            && self.held.is_empty()
    }
}

/// The sparse per-link fault table of one simulated deployment.
#[derive(Debug, Default)]
pub struct LinkFaults {
    links: BTreeMap<(ServerId, ServerId), LinkState>,
    /// Messages destroyed by probabilistic drop since construction.
    dropped: u64,
    /// Messages destroyed by injected bit flips (CRC-detected and
    /// discarded at the receiver) since construction.
    flipped: u64,
    /// Messages currently parked (blocked links + reorder bursts).
    parked: usize,
}

impl LinkFaults {
    /// An empty table (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether no fault is configured and nothing is parked — the
    /// transmit fast path skips the table entirely.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Messages destroyed by probabilistic drop so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Messages destroyed by injected bit flips so far — every one a
    /// corruption the wire CRC *detected* (a flip is never delivered).
    pub fn flipped(&self) -> u64 {
        self.flipped
    }

    /// Whether any link is blocked or holding messages — a drained event
    /// queue in this state means "waiting for a heal", not a protocol
    /// stall.
    pub fn holding(&self) -> bool {
        self.parked > 0 || self.links.values().any(|l| l.blocked)
    }

    fn entry(&mut self, from: ServerId, to: ServerId) -> &mut LinkState {
        self.links.entry((from, to)).or_default()
    }

    /// Drop the entry again if the command left it fault-free.
    fn prune(&mut self, from: ServerId, to: ServerId) {
        if self.links.get(&(from, to)).is_some_and(LinkState::is_clear) {
            self.links.remove(&(from, to));
        }
    }

    /// Apply one command, appending any released messages to `released`
    /// for the caller to schedule at `max(arrival, now)` in the given
    /// order. Healed partition holds keep their original arrivals
    /// (per-link FIFO, links in ascending id order — deterministic);
    /// released reorder bursts come out reversed with arrivals collapsed
    /// to the burst's latest, so the reversal survives the time-ordered
    /// event queue.
    pub fn apply(&mut self, cmd: &FaultCmd, released: &mut Vec<HeldMessage>) {
        match cmd {
            FaultCmd::Partition { groups } => {
                for (gi, ga) in groups.iter().enumerate() {
                    for gb in groups.iter().skip(gi + 1) {
                        for &a in ga {
                            for &b in gb {
                                self.entry(a, b).blocked = true;
                                self.entry(b, a).blocked = true;
                            }
                        }
                    }
                }
            }
            FaultCmd::Isolate { from, to } => {
                self.entry(*from, *to).blocked = true;
            }
            FaultCmd::HealPartitions => {
                for link in self.links.values_mut() {
                    if link.blocked {
                        link.blocked = false;
                        self.parked -= link.held.len();
                        released.append(&mut link.held);
                    }
                }
                self.links.retain(|_, l| !l.is_clear());
            }
            FaultCmd::HealLink { from, to } => {
                if let Some(link) = self.links.get_mut(&(*from, *to)) {
                    if link.blocked {
                        link.blocked = false;
                        self.parked -= link.held.len();
                        released.append(&mut link.held);
                    }
                }
                self.prune(*from, *to);
            }
            FaultCmd::Drop { from, to, ppm } => {
                self.entry(*from, *to).drop_ppm = (*ppm).min(PPM);
                self.prune(*from, *to);
            }
            FaultCmd::BitFlip { from, to, ppm } => {
                self.entry(*from, *to).flip_ppm = (*ppm).min(PPM);
                self.prune(*from, *to);
            }
            FaultCmd::Delay { from, to, extra } => {
                self.entry(*from, *to).extra_delay = *extra;
                self.prune(*from, *to);
            }
            FaultCmd::Reorder { from, to, burst } => {
                let link = self.links.entry((*from, *to)).or_default();
                // Restarting a burst releases a previous partial one
                // (reversed, as promised).
                if !link.blocked && !link.held.is_empty() {
                    let count = link.held.len();
                    release_reversed(&mut link.held, released);
                    self.parked -= count;
                }
                self.links.entry((*from, *to)).or_default().reorder_left = *burst;
                self.prune(*from, *to);
            }
            FaultCmd::Clear => {
                for link in self.links.values_mut() {
                    self.parked -= link.held.len();
                    if link.blocked {
                        // Partition hold queue: FIFO restoration.
                        released.append(&mut link.held);
                    } else {
                        // Reorder burst: reversed release, as promised.
                        release_reversed(&mut link.held, released);
                    }
                }
                self.links.clear();
            }
        }
    }

    /// Route one transmission. Returns the messages to schedule now, in
    /// order (usually just `m`; a filled reorder burst releases the whole
    /// burst reversed; a held or dropped message releases nothing).
    pub fn route<R: Rng>(&mut self, m: HeldMessage, rng: &mut R, out: &mut Vec<HeldMessage>) {
        let key = (m.from, m.to);
        let Some(link) = self.links.get_mut(&key) else {
            out.push(m);
            return;
        };
        if link.blocked {
            link.held.push(m);
            self.parked += 1;
            return;
        }
        if link.drop_ppm > 0 && rng.gen_range(0..PPM) < link.drop_ppm {
            self.dropped += 1;
            return;
        }
        // A flipped bit is a *detected* fault, never a delivered one:
        // typed messages have no byte image to corrupt, so the sampled
        // flip collapses to its wire-layer outcome — the receiver's
        // frame CRC fails and the frame is discarded (survivability
        // comes from the overlay's redundant paths, exactly as for
        // probabilistic drop).
        if link.flip_ppm > 0 && rng.gen_range(0..PPM) < link.flip_ppm {
            self.flipped += 1;
            return;
        }
        let mut m = m;
        m.arrival += link.extra_delay;
        if link.reorder_left > 0 {
            link.reorder_left -= 1;
            link.held.push(m);
            self.parked += 1;
            if link.reorder_left == 0 {
                let count = link.held.len();
                release_reversed(&mut link.held, out);
                self.parked -= count;
                self.prune(key.0, key.1);
            }
            return;
        }
        out.push(m);
    }

    /// Release every partial reorder burst (reversed). Called when the
    /// event queue drains, so a burst that never fills cannot strand its
    /// messages. Returns whether anything was released.
    pub fn flush_reorder_partials(&mut self, released: &mut Vec<HeldMessage>) -> bool {
        let before = released.len();
        for link in self.links.values_mut() {
            if !link.blocked && !link.held.is_empty() {
                self.parked -= link.held.len();
                link.reorder_left = 0;
                release_reversed(&mut link.held, released);
            }
        }
        self.links.retain(|_, l| !l.is_clear());
        released.len() > before
    }
}

/// Drain a reorder buffer into `out` in reverse send order, collapsing
/// every arrival to the group's latest. The collapse is what makes the
/// reversal real: the event queue is time-ordered, so messages released
/// with their original distinct arrivals would simply re-sort back into
/// FIFO order.
fn release_reversed(held: &mut Vec<HeldMessage>, out: &mut Vec<HeldMessage>) {
    let Some(release) = held.iter().map(|h| h.arrival).max() else {
        return;
    };
    held.reverse();
    for mut h in held.drain(..) {
        h.arrival = release;
        out.push(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn msg(from: ServerId, to: ServerId, arrival_ns: u64) -> HeldMessage {
        HeldMessage {
            to,
            from,
            depart: SimTime::from_ns(arrival_ns.saturating_sub(10)),
            arrival: SimTime::from_ns(arrival_ns),
            msg: Message::Bcast { round: 0, origin: from, payload: Bytes::new() },
        }
    }

    #[test]
    fn clear_table_passes_through() {
        let mut faults = LinkFaults::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mut out = Vec::new();
        faults.route(msg(0, 1, 100), &mut rng, &mut out);
        assert_eq!(out.len(), 1);
        assert!(faults.is_empty());
    }

    #[test]
    fn partition_holds_and_heal_releases_fifo() {
        let mut faults = LinkFaults::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mut out = Vec::new();
        faults.apply(&FaultCmd::Partition { groups: vec![vec![0, 1], vec![2, 3]] }, &mut out);
        assert!(out.is_empty());
        // Cross-group held, both directions; intra-group flows.
        faults.route(msg(0, 2, 100), &mut rng, &mut out);
        faults.route(msg(2, 0, 110), &mut rng, &mut out);
        faults.route(msg(0, 2, 120), &mut rng, &mut out);
        assert!(out.is_empty());
        faults.route(msg(0, 1, 130), &mut rng, &mut out);
        assert_eq!(out.len(), 1);
        assert!(faults.holding());
        out.clear();
        faults.apply(&FaultCmd::HealPartitions, &mut out);
        // Per-link FIFO: link (0,2)'s two messages in send order.
        let arrivals: Vec<u64> =
            out.iter().filter(|h| h.from == 0 && h.to == 2).map(|h| h.arrival.as_ns()).collect();
        assert_eq!(arrivals, vec![100, 120]);
        assert_eq!(out.len(), 3);
        assert!(faults.is_empty(), "healed table prunes to empty");
    }

    #[test]
    fn isolate_blocks_one_direction_only() {
        let mut faults = LinkFaults::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mut out = Vec::new();
        faults.apply(&FaultCmd::Isolate { from: 3, to: 4 }, &mut out);
        faults.route(msg(3, 4, 50), &mut rng, &mut out);
        assert!(out.is_empty());
        faults.route(msg(4, 3, 60), &mut rng, &mut out);
        assert_eq!(out.len(), 1, "reverse direction unaffected");
    }

    #[test]
    fn heal_link_releases_one_link_fifo() {
        let mut faults = LinkFaults::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mut out = Vec::new();
        faults.apply(&FaultCmd::Isolate { from: 0, to: 1 }, &mut out);
        faults.apply(&FaultCmd::Isolate { from: 2, to: 3 }, &mut out);
        faults.route(msg(0, 1, 100), &mut rng, &mut out);
        faults.route(msg(0, 1, 120), &mut rng, &mut out);
        faults.route(msg(2, 3, 110), &mut rng, &mut out);
        assert!(out.is_empty());
        faults.apply(&FaultCmd::HealLink { from: 0, to: 1 }, &mut out);
        let arrivals: Vec<u64> = out.iter().map(|h| h.arrival.as_ns()).collect();
        assert_eq!(arrivals, vec![100, 120], "healed link releases FIFO");
        assert!(out.iter().all(|h| h.from == 0 && h.to == 1));
        assert!(faults.holding(), "the other isolated link stays blocked");
        out.clear();
        // Re-heal and heal-of-never-blocked are no-ops.
        faults.apply(&FaultCmd::HealLink { from: 0, to: 1 }, &mut out);
        faults.apply(&FaultCmd::HealLink { from: 5, to: 6 }, &mut out);
        assert!(out.is_empty());
        faults.apply(&FaultCmd::HealLink { from: 2, to: 3 }, &mut out);
        assert_eq!(out.len(), 1);
        assert!(faults.is_empty(), "fully healed table prunes to empty");
    }

    #[test]
    fn drop_is_probabilistic_and_counted() {
        let mut faults = LinkFaults::new();
        let mut rng = StdRng::seed_from_u64(7);
        let mut out = Vec::new();
        faults.apply(&FaultCmd::Drop { from: 0, to: 1, ppm: PPM / 2 }, &mut out);
        for i in 0..1000 {
            faults.route(msg(0, 1, i), &mut rng, &mut out);
        }
        let delivered = out.len() as u64;
        assert_eq!(delivered + faults.dropped(), 1000);
        assert!(faults.dropped() > 300 && faults.dropped() < 700, "{}", faults.dropped());
        // ppm = 0 clears the fault.
        faults.apply(&FaultCmd::Drop { from: 0, to: 1, ppm: 0 }, &mut out);
        assert!(faults.is_empty());
    }

    #[test]
    fn bit_flip_is_detected_and_dropped_and_counted() {
        let mut faults = LinkFaults::new();
        let mut rng = StdRng::seed_from_u64(9);
        let mut out = Vec::new();
        faults.apply(&FaultCmd::BitFlip { from: 0, to: 1, ppm: PPM / 2 }, &mut out);
        for i in 0..1000 {
            faults.route(msg(0, 1, i), &mut rng, &mut out);
        }
        // Every sampled flip is destroyed (CRC-detected), never
        // delivered corrupt — delivered + flipped accounts for all.
        let delivered = out.len() as u64;
        assert_eq!(delivered + faults.flipped(), 1000);
        assert_eq!(faults.dropped(), 0, "flips are counted apart from drops");
        assert!(faults.flipped() > 300 && faults.flipped() < 700, "{}", faults.flipped());
        // ppm = 0 clears the fault.
        faults.apply(&FaultCmd::BitFlip { from: 0, to: 1, ppm: 0 }, &mut out);
        assert!(faults.is_empty());
    }

    #[test]
    fn delay_spike_shifts_arrival() {
        let mut faults = LinkFaults::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mut out = Vec::new();
        faults.apply(&FaultCmd::Delay { from: 1, to: 2, extra: SimTime::from_us(5) }, &mut out);
        faults.route(msg(1, 2, 1_000), &mut rng, &mut out);
        assert_eq!(out[0].arrival, SimTime::from_ns(1_000) + SimTime::from_us(5));
    }

    #[test]
    fn reorder_burst_releases_reversed_at_latest_arrival() {
        let mut faults = LinkFaults::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mut out = Vec::new();
        faults.apply(&FaultCmd::Reorder { from: 0, to: 1, burst: 3 }, &mut out);
        faults.route(msg(0, 1, 100), &mut rng, &mut out);
        faults.route(msg(0, 1, 200), &mut rng, &mut out);
        assert!(out.is_empty());
        faults.route(msg(0, 1, 300), &mut rng, &mut out);
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|h| h.arrival.as_ns() == 300), "released together");
        let departs: Vec<u64> = out.iter().map(|h| h.depart.as_ns()).collect();
        assert_eq!(departs, vec![290, 190, 90], "reversed send order");
        assert!(faults.is_empty(), "one-shot burst prunes its entry");
    }

    #[test]
    fn partial_reorder_burst_flushes_on_demand() {
        let mut faults = LinkFaults::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mut out = Vec::new();
        faults.apply(&FaultCmd::Reorder { from: 0, to: 1, burst: 5 }, &mut out);
        faults.route(msg(0, 1, 100), &mut rng, &mut out);
        faults.route(msg(0, 1, 200), &mut rng, &mut out);
        assert!(out.is_empty());
        assert!(faults.flush_reorder_partials(&mut out));
        assert_eq!(out.len(), 2);
        let departs: Vec<u64> = out.iter().map(|h| h.depart.as_ns()).collect();
        assert_eq!(departs, vec![190, 90], "partial burst still releases reversed");
        assert!(
            out.iter().all(|h| h.arrival.as_ns() == 200),
            "arrivals collapse to the latest, or the queue re-sorts the reversal away"
        );
        assert!(!faults.flush_reorder_partials(&mut out), "idempotent");
        assert!(faults.is_empty());
    }

    #[test]
    fn clear_releases_everything() {
        let mut faults = LinkFaults::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mut out = Vec::new();
        faults.apply(&FaultCmd::Isolate { from: 0, to: 1 }, &mut out);
        faults.apply(&FaultCmd::Reorder { from: 2, to: 3, burst: 4 }, &mut out);
        faults.apply(&FaultCmd::Delay { from: 4, to: 5, extra: SimTime::from_us(1) }, &mut out);
        faults.route(msg(0, 1, 100), &mut rng, &mut out);
        faults.route(msg(2, 3, 100), &mut rng, &mut out);
        assert!(out.is_empty());
        faults.apply(&FaultCmd::Clear, &mut out);
        assert_eq!(out.len(), 2);
        assert!(faults.is_empty());
        assert!(!faults.holding());
    }
}
