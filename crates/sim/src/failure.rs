//! Failure injection plans.
//!
//! The fail-stop model (§2): a server either works or silently stops.
//! Three injection styles cover the paper's scenarios:
//!
//! * [`FailureEvent::At`] — crash at an absolute simulated instant
//!   (Fig. 7's membership timeline);
//! * [`FailureEvent::AfterSends`] — crash after exactly `k` message
//!   departures, reproducing §2.3's "p0 fails after sending its message
//!   m0 only to p1" walkthrough;
//! * random MTTF-driven crashes via [`FailurePlan::exponential`]
//!   (§4.2.2's lifetime model).

use crate::time::SimTime;
use allconcur_core::ServerId;
use rand::Rng;

/// One scripted crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureEvent {
    /// Crash `server` at simulated time `at`.
    At {
        /// Victim.
        server: ServerId,
        /// Crash instant.
        at: SimTime,
    },
    /// Crash `server` immediately after its `sends`-th message departure
    /// (counted across the whole run).
    AfterSends {
        /// Victim.
        server: ServerId,
        /// Number of departures allowed before the crash.
        sends: u64,
    },
}

/// A set of scripted crashes handed to the harness.
#[derive(Debug, Clone, Default)]
pub struct FailurePlan {
    events: Vec<FailureEvent>,
}

impl FailurePlan {
    /// No failures.
    pub fn none() -> Self {
        Self::default()
    }

    /// Add a timed crash.
    pub fn fail_at(mut self, server: ServerId, at: SimTime) -> Self {
        self.events.push(FailureEvent::At { server, at });
        self
    }

    /// Add a crash after exactly `sends` departures — the §2.3 partial
    /// broadcast scenario uses `sends = 1`.
    pub fn fail_after_sends(mut self, server: ServerId, sends: u64) -> Self {
        self.events.push(FailureEvent::AfterSends { server, sends });
        self
    }

    /// Sample crash times for `n` servers from the exponential lifetime
    /// model with the given MTTF, truncated to `horizon`: the §4.2.2
    /// failure model. Servers whose sampled lifetime exceeds the horizon
    /// never crash.
    pub fn exponential<R: Rng>(n: usize, mttf: SimTime, horizon: SimTime, rng: &mut R) -> Self {
        let mut plan = Self::default();
        for s in 0..n as ServerId {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            let lifetime = -(mttf.as_ns() as f64) * u.ln();
            if lifetime < horizon.as_ns() as f64 {
                plan.events.push(FailureEvent::At {
                    server: s,
                    at: SimTime::from_ns(lifetime.round() as u64),
                });
            }
        }
        plan
    }

    /// [`FailurePlan::exponential`] driven by a self-contained seed —
    /// the reproducibility contract the nemesis harness relies on: a
    /// failing run logs the seed, and replaying with the same seed
    /// rebuilds the byte-identical plan (no ambient RNG state involved).
    pub fn exponential_seeded(n: usize, mttf: SimTime, horizon: SimTime, seed: u64) -> Self {
        use rand::SeedableRng;
        Self::exponential(n, mttf, horizon, &mut rand::rngs::StdRng::seed_from_u64(seed))
    }

    /// The scripted events.
    pub fn events(&self) -> &[FailureEvent] {
        &self.events
    }

    /// Number of scripted crashes.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn builder_accumulates() {
        let plan = FailurePlan::none().fail_at(3, SimTime::from_ms(5)).fail_after_sends(1, 1);
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.events()[0], FailureEvent::At { server: 3, at: SimTime::from_ms(5) });
        assert_eq!(plan.events()[1], FailureEvent::AfterSends { server: 1, sends: 1 });
    }

    #[test]
    fn exponential_plan_respects_horizon() {
        let mut rng = StdRng::seed_from_u64(11);
        let plan =
            FailurePlan::exponential(1000, SimTime::from_secs(10), SimTime::from_secs(1), &mut rng);
        // Expected crash fraction ≈ 1 − e^{−0.1} ≈ 9.5%.
        assert!(plan.len() > 40 && plan.len() < 200, "got {}", plan.len());
        for e in plan.events() {
            match e {
                FailureEvent::At { at, .. } => assert!(*at < SimTime::from_secs(1)),
                _ => panic!("unexpected event type"),
            }
        }
    }

    #[test]
    fn exponential_seeded_replays_from_logged_seed() {
        let logged_seed = 0xfeed_beef;
        let a = FailurePlan::exponential_seeded(
            64,
            SimTime::from_secs(5),
            SimTime::from_secs(1),
            logged_seed,
        );
        let b = FailurePlan::exponential_seeded(
            64,
            SimTime::from_secs(5),
            SimTime::from_secs(1),
            logged_seed,
        );
        assert_eq!(a.events(), b.events());
        assert!(!a.is_empty());
    }

    #[test]
    fn exponential_plan_deterministic_for_seed() {
        let a = FailurePlan::exponential(
            64,
            SimTime::from_secs(5),
            SimTime::from_secs(1),
            &mut StdRng::seed_from_u64(3),
        );
        let b = FailurePlan::exponential(
            64,
            SimTime::from_secs(5),
            SimTime::from_secs(1),
            &mut StdRng::seed_from_u64(3),
        );
        assert_eq!(a.events(), b.events());
    }
}
