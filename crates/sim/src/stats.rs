//! Measurement statistics.
//!
//! The paper reports "the median and the 95% nonparametric confidence
//! interval around it" (§5, citing Hoefler & Belli's benchmarking
//! guidelines). This module implements exactly that: median plus the
//! order-statistic confidence interval from the binomial(n, ½)
//! distribution, alongside the usual summary helpers.

/// Summary of a sample: median with a 95% nonparametric CI.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MedianCi {
    /// The sample median.
    pub median: f64,
    /// Lower bound of the 95% CI around the median.
    pub lo: f64,
    /// Upper bound of the 95% CI around the median.
    pub hi: f64,
}

/// Median of a sample (averaging the middle pair for even sizes).
/// Panics on an empty sample.
pub fn median(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "median of empty sample");
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

/// The `q`-quantile (0 ≤ q ≤ 1) by the nearest-rank method.
pub fn quantile(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0,1]");
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    let idx = ((q * v.len() as f64).ceil() as usize).clamp(1, v.len()) - 1;
    v[idx]
}

/// Arithmetic mean.
pub fn mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "mean of empty sample");
    values.iter().sum::<f64>() / values.len() as f64
}

/// Median with the 95% nonparametric confidence interval: the CI bounds
/// are the order statistics at ranks `⌊(n − 1.96√n)/2⌋` and
/// `⌈1 + (n + 1.96√n)/2⌉` (binomial order-statistic interval). For tiny
/// samples the CI degenerates to the sample range.
pub fn median_ci95(values: &[f64]) -> MedianCi {
    assert!(!values.is_empty(), "CI of empty sample");
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    let n = v.len();
    let med = if n % 2 == 1 { v[n / 2] } else { 0.5 * (v[n / 2 - 1] + v[n / 2]) };
    let nf = n as f64;
    let half_width = 1.96 * nf.sqrt() / 2.0;
    let lo_rank = ((nf / 2.0 - half_width).floor() as isize).max(0) as usize;
    let hi_rank = (((nf / 2.0 + half_width).ceil() as usize).max(1) - 1).min(n - 1);
    MedianCi { median: med, lo: v[lo_rank], hi: v[hi_rank] }
}

/// Online mean/variance accumulator (Welford) for streaming runs where
/// storing every sample is wasteful.
#[derive(Debug, Clone, Copy, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold in one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Observation count.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Bin `(time_seconds, value)` samples into fixed-width buckets and sum
/// each bucket — Fig. 7's "throughput binned into 10 ms intervals".
pub fn bin_series(samples: &[(f64, f64)], bin_width: f64, duration: f64) -> Vec<f64> {
    assert!(bin_width > 0.0);
    let bins = (duration / bin_width).ceil() as usize;
    let mut out = vec![0.0; bins.max(1)];
    for &(t, v) in samples {
        let idx = ((t / bin_width) as usize).min(out.len() - 1);
        out[idx] += v;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[7.0]), 7.0);
    }

    #[test]
    fn quantiles() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(quantile(&v, 0.5), 50.0);
        assert_eq!(quantile(&v, 0.95), 95.0);
        assert_eq!(quantile(&v, 1.0), 100.0);
        assert_eq!(quantile(&v, 0.0), 1.0);
    }

    #[test]
    fn ci_contains_median() {
        let v: Vec<f64> = (0..200).map(|i| (i % 37) as f64).collect();
        let ci = median_ci95(&v);
        assert!(ci.lo <= ci.median && ci.median <= ci.hi);
    }

    #[test]
    fn ci_narrows_with_sample_size() {
        let small: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let large: Vec<f64> = (0..10_000).map(|i| (i % 10) as f64).collect();
        let cs = median_ci95(&small);
        let cl = median_ci95(&large);
        assert!(cl.hi - cl.lo <= cs.hi - cs.lo);
    }

    #[test]
    fn ci_single_sample() {
        let ci = median_ci95(&[5.0]);
        assert_eq!((ci.lo, ci.median, ci.hi), (5.0, 5.0, 5.0));
    }

    #[test]
    fn welford_matches_direct() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        let direct_var = xs.iter().map(|x| (x - 5.0) * (x - 5.0)).sum::<f64>() / 7.0;
        assert!((w.variance() - direct_var).abs() < 1e-12);
    }

    #[test]
    fn binning() {
        let samples = [(0.001, 10.0), (0.009, 5.0), (0.015, 1.0), (0.999, 2.0)];
        let bins = bin_series(&samples, 0.01, 1.0);
        assert_eq!(bins.len(), 100);
        assert_eq!(bins[0], 15.0);
        assert_eq!(bins[1], 1.0);
        assert_eq!(bins[99], 2.0);
    }
}
