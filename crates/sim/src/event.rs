//! The discrete-event queue.
//!
//! A binary min-heap keyed by `(time, sequence)`: the sequence number
//! makes simultaneous events process in insertion order, so entire runs
//! are bit-for-bit reproducible for a fixed seed — a property the
//! regression tests and the paper-figure harness both depend on.

use crate::time::SimTime;
use allconcur_core::message::Message;
use allconcur_core::ServerId;
use bytes::Bytes;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Something that happens at a simulated instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimEvent {
    /// A message finishes arriving at `to`'s NIC.
    Deliver {
        /// Receiving server.
        to: ServerId,
        /// Direct overlay sender.
        from: ServerId,
        /// When the message left the sender's NIC. A crash earlier than
        /// this departure cancels the message (it never physically left).
        depart: SimTime,
        /// The protocol message.
        msg: Message,
    },
    /// The application on `id` submits this round's payload.
    AppBroadcast {
        /// Broadcasting server.
        id: ServerId,
        /// Round payload.
        payload: Bytes,
    },
    /// Scripted fail-stop crash of `id`.
    Crash {
        /// Crashing server.
        id: ServerId,
    },
    /// `at`'s failure detector times out on predecessor `suspect`.
    FdSuspect {
        /// The monitoring server.
        at: ServerId,
        /// The suspected predecessor.
        suspect: ServerId,
    },
    /// Apply a link-fault command (partition, heal, drop, delay,
    /// reorder — see [`crate::fault`]) at a scripted instant.
    Fault {
        /// The fault command.
        cmd: crate::fault::FaultCmd,
    },
}

/// Heap entry: the ordering key plus a slab slot holding the payload.
/// Keeping the entry at three words (vs an inline [`SimEvent`] of ~10)
/// makes every sift during push/pop move a fraction of the bytes — with
/// pipelined rounds the queue holds `W×` more events, so heap traffic
/// is a measurable slice of simulation wall time.
#[derive(Debug, Clone, Copy)]
struct Scheduled {
    at: SimTime,
    seq: u64,
    slot: u32,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we need earliest-first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Deterministic min-heap event queue: ordered by `(time, sequence)`,
/// with the event payloads parked in a free-listed slab so heap sifts
/// move 24-byte keys instead of whole events.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    /// Event payloads by slot; `None` marks a free slot.
    slab: Vec<Option<SimEvent>>,
    /// Recycled slab slots.
    free: Vec<u32>,
    next_seq: u64,
}

impl EventQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `event` at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: SimEvent) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slab[slot as usize] = Some(event);
                slot
            }
            None => {
                self.slab.push(Some(event));
                (self.slab.len() - 1) as u32
            }
        };
        self.heap.push(Scheduled { at, seq, slot });
    }

    /// Pop the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, SimEvent)> {
        let s = self.heap.pop()?;
        let event = self.slab[s.slot as usize].take().expect("scheduled slot occupied");
        self.free.push(s.slot);
        Some((s.at, event))
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn crash(id: ServerId) -> SimEvent {
        SimEvent::Crash { id }
    }

    #[test]
    fn deliver_event_carries_departure() {
        let mut q = EventQueue::new();
        let msg = Message::Bcast { round: 0, origin: 1, payload: Bytes::new() };
        q.schedule(
            SimTime::from_us(9),
            SimEvent::Deliver { to: 2, from: 1, depart: SimTime::from_us(4), msg },
        );
        match q.pop().unwrap().1 {
            SimEvent::Deliver { depart, .. } => assert_eq!(depart, SimTime::from_us(4)),
            _ => panic!("wrong event"),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_us(30), crash(3));
        q.schedule(SimTime::from_us(10), crash(1));
        q.schedule(SimTime::from_us(20), crash(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(t, _)| t.as_ns()).collect();
        assert_eq!(order, vec![10_000, 20_000, 30_000]);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_us(5);
        for id in 0..10 {
            q.schedule(t, crash(id));
        }
        let ids: Vec<ServerId> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                SimEvent::Crash { id } => id,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>(), "ties must break by insertion order");
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert!(q.peek_time().is_none());
        q.schedule(SimTime::from_ms(1), crash(0));
        assert_eq!(q.peek_time(), Some(SimTime::from_ms(1)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
