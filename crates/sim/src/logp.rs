//! Closed-form LogP performance models (§4.1–4.2).
//!
//! These analytic curves appear alongside the measured data in Fig. 6
//! ("Work (LogP)" and "Depth (LogP)") and in the §4.2.2 probabilistic
//! depth analysis. The simulator should track them — the paper uses the
//! agreement between model and measurement as evidence the implementation
//! behaves as designed, and so do we (see `benches/` and the integration
//! tests).

use crate::network::NetworkModel;
use crate::time::SimTime;

/// §4.1: lower bound on round time due to *work*. Each server must
/// receive at least `n − 1` messages and forward them to `d` successors;
/// estimating each send/receive by the overhead `o` gives
/// `2(n − 1)·d·o`.
pub fn work_bound(n: usize, d: usize, model: &NetworkModel) -> SimTime {
    let events = 2 * (n.saturating_sub(1)) as u64 * d as u64;
    SimTime::from_ns(events * model.overhead.as_ns())
}

/// §4.2.1: the *depth* model. R-broadcast traverses `D` hops; each hop
/// costs `L + o_s + o` where `o_s = o + (d−1)/2·o` accounts for expected
/// send contention while fanning out to `d` successors. The empty
/// messages travelling back to the sender cost the same (receive-side
/// contention cancels out in expectation — Fig. 4), so the full
/// A-broadcast depth is `2·D` hops.
pub fn depth_bound(diameter: usize, d: usize, model: &NetworkModel) -> SimTime {
    let o = model.overhead.as_ns() as f64;
    let os = o + (d as f64 - 1.0) / 2.0 * o;
    let per_hop = model.latency.as_ns() as f64 + os + o;
    SimTime::from_ns((2.0 * diameter as f64 * per_hop).round() as u64)
}

/// One-way R-broadcast time `T_D(m) = (L + o_s + o)·D` (§4.2.1).
pub fn rbroadcast_time(diameter: usize, d: usize, model: &NetworkModel) -> SimTime {
    let o = model.overhead.as_ns() as f64;
    let os = o + (d as f64 - 1.0) / 2.0 * o;
    let per_hop = model.latency.as_ns() as f64 + os + o;
    SimTime::from_ns((diameter as f64 * per_hop).round() as u64)
}

/// The combined LogP estimate for a failure-free round: agreement cannot
/// beat either bound, so take the max.
pub fn round_estimate(n: usize, d: usize, diameter: usize, model: &NetworkModel) -> SimTime {
    work_bound(n, d, model).max(depth_bound(diameter, d, model))
}

/// §4.2.2: probability that AllConcur's depth `D` stays within the fault
/// diameter, `Pr[D ≤ D ≤ D_f] = e^{−n·d·o / MTTF}` — the chance that no
/// sender dies mid-fan-out during the round. `o` and MTTF in the same
/// unit.
pub fn prob_depth_within_fault_diameter(n: usize, d: usize, o_secs: f64, mttf_secs: f64) -> f64 {
    (-((n * d) as f64) * o_secs / mttf_secs).exp()
}

/// Probability that `rounds` consecutive rounds all stay within the fault
/// diameter (independent rounds).
pub fn prob_rounds_within_fault_diameter(
    n: usize,
    d: usize,
    o_secs: f64,
    mttf_secs: f64,
    rounds: u64,
) -> f64 {
    prob_depth_within_fault_diameter(n, d, o_secs, mttf_secs).powf(rounds as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_bound_formula() {
        let m = NetworkModel::tcp_cluster();
        // n=8, d=3: 2·7·3·1.8µs = 75.6µs.
        assert_eq!(work_bound(8, 3, &m), SimTime::from_ns(2 * 7 * 3 * 1_800));
    }

    #[test]
    fn depth_bound_formula() {
        let m = NetworkModel::tcp_cluster();
        // D=2, d=3: o_s = 1.8 + 1.8 = 3.6µs; per hop = 12 + 3.6 + 1.8 =
        // 17.4µs; ×2D = 69.6µs.
        assert_eq!(depth_bound(2, 3, &m), SimTime::from_ns(69_600));
        assert_eq!(rbroadcast_time(2, 3, &m), SimTime::from_ns(34_800));
    }

    #[test]
    fn work_dominates_at_scale() {
        // §5: "with increasing the system size, work becomes dominant".
        // On the TCP profile the latency term keeps depth dominant at
        // n = 6 (Fig 6b's crossover); by n = 90 work rules either way.
        let m = NetworkModel::tcp_cluster();
        let small = (work_bound(6, 3, &m), depth_bound(2, 3, &m));
        let large = (work_bound(90, 5, &m), depth_bound(3, 5, &m));
        assert!(small.0 < small.1, "at n=6 depth dominates: {small:?}");
        assert!(large.0 > large.1, "at n=90 work dominates: {large:?}");
    }

    #[test]
    fn paper_section_422_example() {
        // "a system of 256 servers connected via a digraph of degree 7
        // would finish 1 million AllConcur rounds with D ≤ D_f with a
        // probability larger than 99.99%" — MTTF ≈ 2 years, o = 1.8 µs.
        let mttf_secs = 2.0 * 365.0 * 24.0 * 3600.0;
        let p = prob_rounds_within_fault_diameter(256, 7, 1.8e-6, mttf_secs, 1_000_000);
        assert!(p > 0.9999, "p = {p}");
    }

    #[test]
    fn probability_decreases_with_scale() {
        let mttf = 2.0 * 365.0 * 24.0 * 3600.0;
        let p_small = prob_depth_within_fault_diameter(8, 3, 1.8e-6, mttf);
        let p_large = prob_depth_within_fault_diameter(1024, 11, 1.8e-6, mttf);
        assert!(p_small > p_large);
        assert!(p_large > 0.0 && p_small < 1.0);
    }

    #[test]
    fn round_estimate_is_max() {
        let m = NetworkModel::tcp_cluster();
        let est = round_estimate(8, 3, 2, &m);
        assert_eq!(est, work_bound(8, 3, &m).max(depth_bound(2, 3, &m)));
    }
}
