#![warn(missing_docs)]
//! # allconcur-baselines — what AllConcur is measured against
//!
//! The paper's evaluation (§5) compares AllConcur with two baselines, both
//! rebuilt here over the *same* simulated LogGP network as AllConcur
//! itself, so the Fig. 10 comparison is apples-to-apples:
//!
//! * [`leader`] — **leader-based atomic broadcast** in the deployment of
//!   §4.5/Fig. 1a: `n` servers send their updates to the leader of a
//!   small replication group (size 5, enough for 6-nines — §5); the
//!   leader replicates for reliability, then disseminates every update to
//!   every server. This is the Libpaxos stand-in: it exhibits the leader's
//!   `O(n²)` work bottleneck and carries a configurable per-message
//!   software overhead calibrated to Libpaxos-class implementations.
//! * [`allgather`] — **unreliable agreement** à la `MPI_Allgather`
//!   (recursive doubling and ring variants): every server ends up with
//!   every message, but a single failure loses data. AllConcur's
//!   fault-tolerance overhead (the "58%" of §5) is measured against this
//!   floor.
//!
//! Both baselines also come with in-memory correctness tests (total order
//! for the leader protocol; completeness for allgather).

pub mod allgather;
pub mod leader;
