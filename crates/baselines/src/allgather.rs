//! Unreliable agreement — the `MPI_Allgather` stand-in (§5, Fig. 10a).
//!
//! The paper measures AllConcur's fault-tolerance overhead against an
//! MPI_Allgather dissemination: every server contributes one message and
//! ends up with all `n`, with **no** redundancy and no failure handling.
//! Open MPI picks among several allgather algorithms by message size; the
//! two that matter at the paper's sizes are both here:
//!
//! * **recursive doubling** (power-of-two `n`): `log₂ n` steps, step `k`
//!   exchanging `2^k` blocks pairwise;
//! * **ring**: `n − 1` steps, each server forwarding one block to its
//!   neighbour per step — bandwidth-optimal for large messages.
//!
//! Both are simulated over the same LogGP parameters as AllConcur, and
//! also implemented as in-memory block exchanges so tests can verify the
//! communication schedule actually gathers everything.

use allconcur_sim::network::NetworkModel;
use allconcur_sim::time::SimTime;

/// Which collective schedule to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllgatherAlgorithm {
    /// `log₂ n` pairwise exchange steps; requires power-of-two `n`.
    RecursiveDoubling,
    /// `n − 1` neighbour-forwarding steps.
    Ring,
}

/// Outcome of one allgather round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AllgatherOutcome {
    /// Completion time of the collective.
    pub round_time: SimTime,
    /// Messages on the wire.
    pub messages_sent: u64,
    /// Wire bytes.
    pub bytes_sent: u64,
}

/// Simulate one allgather of `block_bytes` per server across `n` servers
/// at ideal efficiency (`efficiency = 1.0`).
///
/// Per step, every server sends and receives concurrently (full-duplex
/// NICs); a step costs `o + s·G` (occupancy) `+ L + o` and all servers
/// advance in lockstep — the barrier-synchronous behaviour of a blocking
/// MPI collective.
pub fn simulate_allgather(
    n: usize,
    block_bytes: usize,
    algo: AllgatherAlgorithm,
    model: &NetworkModel,
) -> AllgatherOutcome {
    simulate_allgather_eff(n, block_bytes, algo, model, 1.0)
}

/// [`simulate_allgather`] with an *efficiency* factor in `(0, 1]`: the
/// fraction of the ideal step rate a real MPI implementation sustains.
/// Blocking collectives over TCP lose time to step synchronisation
/// (slowest rank gates every step), protocol switch-over, and copy
/// overhead; Open MPI over IPoIB measures around 45% of line rate at the
/// paper's scale, which reproduces Fig. 10a's ≈12 Gbps peak (see
/// EXPERIMENTS.md for the calibration).
pub fn simulate_allgather_eff(
    n: usize,
    block_bytes: usize,
    algo: AllgatherAlgorithm,
    model: &NetworkModel,
    efficiency: f64,
) -> AllgatherOutcome {
    assert!(n >= 1);
    assert!(efficiency > 0.0 && efficiency <= 1.0, "efficiency in (0, 1]");
    let mut ideal = SimTime::ZERO;
    let mut messages = 0u64;
    let mut bytes = 0u64;
    match algo {
        AllgatherAlgorithm::RecursiveDoubling => {
            assert!(n.is_power_of_two(), "recursive doubling needs power-of-two n");
            let steps = n.trailing_zeros();
            for k in 0..steps {
                let blocks = 1usize << k;
                let payload = blocks * block_bytes;
                // Pairwise exchange: send own half, receive peer's half.
                ideal += model.occupancy(payload) + model.latency + model.overhead;
                messages += n as u64;
                bytes += (n * payload) as u64;
            }
        }
        AllgatherAlgorithm::Ring => {
            for _ in 0..n.saturating_sub(1) {
                ideal += model.occupancy(block_bytes) + model.latency + model.overhead;
                messages += n as u64;
                bytes += (n * block_bytes) as u64;
            }
        }
    }
    let time = SimTime::from_ns((ideal.as_ns() as f64 / efficiency).round() as u64);
    AllgatherOutcome { round_time: time, messages_sent: messages, bytes_sent: bytes }
}

/// In-memory execution of the allgather *schedule*: verifies that the
/// simulated communication pattern really distributes every block to
/// every server (the correctness side of the baseline).
pub fn execute_allgather<T: Clone>(blocks: &[T], algo: AllgatherAlgorithm) -> Vec<Vec<Option<T>>> {
    let n = blocks.len();
    let mut state: Vec<Vec<Option<T>>> = (0..n)
        .map(|i| {
            let mut v = vec![None; n];
            v[i] = Some(blocks[i].clone());
            v
        })
        .collect();
    match algo {
        AllgatherAlgorithm::RecursiveDoubling => {
            assert!(n.is_power_of_two());
            let mut dist = 1usize;
            while dist < n {
                let snapshot = state.clone();
                for (i, row) in state.iter_mut().enumerate() {
                    let peer = i ^ dist;
                    for (slot, val) in row.iter_mut().zip(&snapshot[peer]) {
                        if slot.is_none() {
                            *slot = val.clone();
                        }
                    }
                }
                dist <<= 1;
            }
        }
        AllgatherAlgorithm::Ring => {
            // Step s: server i forwards block (i − s mod n) to i+1.
            for s in 0..n.saturating_sub(1) {
                let snapshot = state.clone();
                for (i, row) in state.iter_mut().enumerate() {
                    let from = (i + n - 1) % n;
                    let block = (from + n - s) % n;
                    if row[block].is_none() {
                        row[block] = snapshot[from][block].clone();
                    }
                }
            }
        }
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recursive_doubling_gathers_all() {
        let blocks: Vec<u32> = (0..16).collect();
        let state = execute_allgather(&blocks, AllgatherAlgorithm::RecursiveDoubling);
        for (i, row) in state.iter().enumerate() {
            for (j, v) in row.iter().enumerate() {
                assert_eq!(*v, Some(j as u32), "server {i} missing block {j}");
            }
        }
    }

    #[test]
    fn ring_gathers_all() {
        for n in [1usize, 2, 5, 9] {
            let blocks: Vec<u32> = (0..n as u32).collect();
            let state = execute_allgather(&blocks, AllgatherAlgorithm::Ring);
            for (i, row) in state.iter().enumerate() {
                for (j, v) in row.iter().enumerate() {
                    assert_eq!(*v, Some(j as u32), "n={n} server {i} missing block {j}");
                }
            }
        }
    }

    #[test]
    fn ring_time_linear_in_n() {
        let m = NetworkModel::tcp_cluster();
        let t8 = simulate_allgather(8, 1024, AllgatherAlgorithm::Ring, &m).round_time;
        let t32 = simulate_allgather(32, 1024, AllgatherAlgorithm::Ring, &m).round_time;
        let ratio = t32.as_ns() as f64 / t8.as_ns() as f64;
        assert!(ratio > 4.0 && ratio < 4.6, "ratio {ratio} should be ≈ 31/7");
    }

    #[test]
    fn recursive_doubling_log_steps_cheaper_for_small_messages() {
        let m = NetworkModel::tcp_cluster();
        let rd = simulate_allgather(64, 8, AllgatherAlgorithm::RecursiveDoubling, &m).round_time;
        let ring = simulate_allgather(64, 8, AllgatherAlgorithm::Ring, &m).round_time;
        assert!(rd < ring, "rd {rd} vs ring {ring}: latency-bound regime favours log steps");
    }

    #[test]
    fn bytes_equal_across_algorithms() {
        // Both move (n−1)·B per server; totals match.
        let m = NetworkModel::tcp_cluster();
        let rd = simulate_allgather(16, 512, AllgatherAlgorithm::RecursiveDoubling, &m);
        let ring = simulate_allgather(16, 512, AllgatherAlgorithm::Ring, &m);
        assert_eq!(rd.bytes_sent, ring.bytes_sent);
        assert_eq!(rd.bytes_sent, 16 * 15 * 512);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn recursive_doubling_rejects_odd_n() {
        simulate_allgather(
            6,
            8,
            AllgatherAlgorithm::RecursiveDoubling,
            &NetworkModel::tcp_cluster(),
        );
    }

    #[test]
    fn single_server_trivial() {
        let m = NetworkModel::tcp_cluster();
        let out = simulate_allgather(1, 64, AllgatherAlgorithm::Ring, &m);
        assert_eq!(out.round_time, SimTime::ZERO);
        assert_eq!(out.messages_sent, 0);
    }
}
