//! Leader-based atomic broadcast — the Libpaxos stand-in (§4.5, Fig. 1a,
//! Fig. 10c).
//!
//! Deployment shape, straight from §4.5: agreement among `n` servers goes
//! through a leader-based replication group whose size depends only on
//! the group's *own* reliability (5 members for 6-nines — §5), not on
//! `n`. One update flows through three stages (Fig. 1a):
//!
//! 1. **send** — each server sends its update to the leader;
//! 2. **replicate** — the leader runs a Paxos phase-2 exchange: accept
//!    messages to the 4 followers, acks back, majority (3/5) commits;
//! 3. **disseminate** — the leader sends every committed update to every
//!    server.
//!
//! The leader therefore does `O(n²)` work per round against AllConcur's
//! `O(n·d)` per server, and the leader's NIC serialises all of it — the
//! bottleneck the paper's 17× headline comes from.
//!
//! Two implementations live here:
//!
//! * [`LeaderCluster`] — event-driven simulation over the same
//!   [`allconcur_sim::network`] primitives AllConcur uses, with a
//!   configurable per-message software overhead at the group members
//!   (Libpaxos processes every value through a full protocol stack;
//!   `software_overhead` defaults to a Libpaxos-class 35 µs/message,
//!   see EXPERIMENTS.md for the calibration);
//! * [`InMemoryLeader`] — a zero-latency functional model used by the
//!   correctness tests to check ordering semantics (total order follows
//!   from the leader sequencing updates).

use allconcur_core::ServerId;
use allconcur_sim::network::{NetworkModel, NicState};
use allconcur_sim::time::SimTime;
use bytes::Bytes;

/// Paxos-style replication group configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeaderConfig {
    /// Servers reaching agreement (Paxos "clients" in §4.5).
    pub n: usize,
    /// Replication group size (5 in the paper's evaluation).
    pub group_size: usize,
    /// Per-message software overhead at group members, modelling the
    /// Paxos implementation's per-value protocol cost on top of the raw
    /// network `o`.
    pub software_overhead: SimTime,
    /// Per-byte software cost (ns/B) at group members: Libpaxos copies
    /// every value through its single-threaded protocol stack, which
    /// processes on the order of 1 GB/s. Calibrated so the n = 8 peak
    /// lands on Fig. 10c's ≈0.45 Gbps (see EXPERIMENTS.md).
    pub software_gap_per_byte_ns: f64,
}

impl LeaderConfig {
    /// The paper's setting: group of five, Libpaxos-class software stack.
    pub fn paper_default(n: usize) -> Self {
        LeaderConfig {
            n,
            group_size: 5,
            software_overhead: SimTime::from_us(35),
            software_gap_per_byte_ns: 1.0,
        }
    }
}

/// Outcome of one leader-based agreement round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeaderRoundOutcome {
    /// Time from the servers' sends to the last server holding all
    /// updates.
    pub round_time: SimTime,
    /// Messages placed on the wire.
    pub messages_sent: u64,
    /// Wire bytes.
    pub bytes_sent: u64,
}

/// Event-driven simulation of the leader-based deployment over LogGP.
///
/// The three stages pipeline at the leader's NIC exactly as they would in
/// a real single-leader system: receives serialise, replication
/// round-trips overlap with further receives, dissemination serialises
/// on the send side.
#[derive(Debug, Clone)]
pub struct LeaderCluster {
    cfg: LeaderConfig,
    model: NetworkModel,
    clock: SimTime,
}

impl LeaderCluster {
    /// New cluster over the given network model.
    pub fn new(cfg: LeaderConfig, model: NetworkModel) -> Self {
        assert!(cfg.n >= 1);
        assert!(cfg.group_size >= 1, "need at least a leader");
        LeaderCluster { cfg, model, clock: SimTime::ZERO }
    }

    /// Current simulated clock (advances across rounds).
    pub fn clock(&self) -> SimTime {
        self.clock
    }

    /// Run one round in which each of the `n` servers contributes one
    /// `batch_bytes`-byte update.
    ///
    /// The stages are simulated with explicit NIC serialisation:
    ///
    /// * `n` updates arrive at the leader (recv side serialises at
    ///   `o + s·G` each, plus the software overhead per value);
    /// * for each update, the leader sends `group − 1` accepts and
    ///   receives a majority of acks (pipelined: the leader keeps
    ///   receiving while accepts of earlier values are in flight);
    /// * each committed update is sent to all `n` servers (send side
    ///   serialises; `n·n` messages total).
    pub fn run_round(&mut self, batch_bytes: usize) -> LeaderRoundOutcome {
        let LeaderConfig { n, group_size, software_overhead, software_gap_per_byte_ns } = self.cfg;
        let followers = group_size - 1;
        let majority_acks = group_size / 2; // leader + these acks = majority
        let start = self.clock;

        // Group members pay the protocol stack's per-byte cost on top of
        // the wire gap: their NICs are modelled with the inflated gap.
        let sw_model =
            self.model.with_gap_per_byte_ns(self.model.gap_per_byte_ns + software_gap_per_byte_ns);
        let mut leader_nic = NicState::default();
        let mut follower_nics = vec![NicState::default(); followers];
        let mut messages = 0u64;
        let mut bytes = 0u64;

        // Stage 1: n servers send their update to the leader. Departures
        // are parallel across servers (each has its own NIC), so arrivals
        // are simultaneous up to per-server o; the leader's receive side
        // is the serialisation point.
        let mut commit_times = Vec::with_capacity(n);
        for _ in 0..n {
            let arrival = start + self.model.occupancy(batch_bytes) + self.model.latency;
            let recvd =
                leader_nic.schedule_recv(arrival, batch_bytes, &sw_model) + software_overhead;
            messages += 1;
            bytes += batch_bytes as u64;

            // Stage 2: replication (Paxos phase 2) for this value.
            let mut ack_times = Vec::with_capacity(followers);
            for fnic in follower_nics.iter_mut() {
                let depart = leader_nic.schedule_send(recvd, batch_bytes, &sw_model);
                let f_recv =
                    fnic.schedule_recv(depart + self.model.latency, batch_bytes, &sw_model)
                        + software_overhead;
                // Ack (tiny message) back to the leader.
                let ack_arrival = f_recv + self.model.occupancy(16) + self.model.latency;
                let acked = leader_nic.schedule_recv(ack_arrival, 16, &sw_model);
                ack_times.push(acked);
                messages += 2;
                bytes += batch_bytes as u64 + 16;
            }
            ack_times.sort_unstable();
            let committed =
                if majority_acks == 0 { recvd } else { ack_times[majority_acks - 1].max(recvd) };
            commit_times.push(committed);
        }

        // Stage 3: dissemination — every committed update to every
        // server, serialised at the leader's send NIC.
        let mut last_delivery = start;
        for &commit in &commit_times {
            for _ in 0..n {
                let depart =
                    leader_nic.schedule_send(commit + software_overhead, batch_bytes, &sw_model);
                let delivered = depart + self.model.latency + self.model.occupancy(batch_bytes);
                last_delivery = last_delivery.max(delivered);
                messages += 1;
                bytes += batch_bytes as u64;
            }
        }

        self.clock = last_delivery;
        LeaderRoundOutcome {
            round_time: last_delivery - start,
            messages_sent: messages,
            bytes_sent: bytes,
        }
    }

    /// §4.5's failure analysis: cost of a leader failure = detection +
    /// election among the group + `n` reconnections, serialised at the
    /// new leader.
    pub fn leader_failover_time(&self, fd_timeout: SimTime) -> SimTime {
        let election = self.model.message_time() + self.model.message_time(); // one round-trip in the group
        let reconnect_each = self.model.message_time() + self.model.overhead;
        let reconnects = SimTime::from_ns(reconnect_each.as_ns() * self.cfg.n as u64);
        fd_timeout + election + reconnects
    }
}

/// Zero-latency functional model: the leader sequences updates in arrival
/// order; everyone delivers the same sequence. Used to pin down the
/// ordering semantics the simulation abstracts away.
#[derive(Debug, Default)]
pub struct InMemoryLeader {
    log: Vec<(ServerId, Bytes)>,
}

impl InMemoryLeader {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// A server submits an update; the leader assigns the next slot.
    pub fn submit(&mut self, from: ServerId, update: Bytes) -> usize {
        self.log.push((from, update));
        self.log.len() - 1
    }

    /// What every server delivers: the leader's log, in slot order.
    pub fn delivery_sequence(&self) -> &[(ServerId, Bytes)] {
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> NetworkModel {
        NetworkModel::tcp_cluster()
    }

    #[test]
    fn round_produces_n_squared_dissemination() {
        let n = 8;
        let mut c = LeaderCluster::new(LeaderConfig::paper_default(n), model());
        let out = c.run_round(1024);
        // n sends in + n·(group−1) accepts + acks + n² disseminations.
        let expected = n as u64 + (n * 4 * 2) as u64 + (n * n) as u64;
        assert_eq!(out.messages_sent, expected);
        assert!(out.round_time > SimTime::ZERO);
    }

    #[test]
    fn leader_work_scales_quadratically() {
        let mut c8 = LeaderCluster::new(LeaderConfig::paper_default(8), model());
        let mut c32 = LeaderCluster::new(LeaderConfig::paper_default(32), model());
        let t8 = c8.run_round(4096).round_time;
        let t32 = c32.run_round(4096).round_time;
        // 4× the servers → ≳4× the round time (dissemination n² vs n,
        // but per-round data also grows n, so time per agreed byte grows).
        assert!(t32.as_ns() > 3 * t8.as_ns(), "t8={t8} t32={t32}");
    }

    fn raw_config(n: usize, group_size: usize, software_overhead: SimTime) -> LeaderConfig {
        LeaderConfig { n, group_size, software_overhead, software_gap_per_byte_ns: 0.0 }
    }

    #[test]
    fn group_size_one_is_unreplicated_sequencer() {
        let cfg = raw_config(4, 1, SimTime::ZERO);
        let mut c = LeaderCluster::new(cfg, model());
        let out = c.run_round(64);
        assert_eq!(out.messages_sent, 4 + 16);
    }

    #[test]
    fn software_overhead_dominates_when_large() {
        let fast = raw_config(8, 5, SimTime::ZERO);
        let slow = raw_config(8, 5, SimTime::from_ms(1));
        let t_fast = LeaderCluster::new(fast, model()).run_round(64).round_time;
        let t_slow = LeaderCluster::new(slow, model()).run_round(64).round_time;
        assert!(t_slow.as_ns() > t_fast.as_ns() + 8_000_000, "per-value ms must show up");
    }

    #[test]
    fn software_byte_cost_throttles_large_values() {
        let lean = raw_config(8, 5, SimTime::ZERO);
        let heavy = LeaderConfig { software_gap_per_byte_ns: 2.0, ..lean };
        let t_lean = LeaderCluster::new(lean, model()).run_round(1 << 18).round_time;
        let t_heavy = LeaderCluster::new(heavy, model()).run_round(1 << 18).round_time;
        assert!(
            t_heavy.as_ns() > 2 * t_lean.as_ns(),
            "per-byte stack cost must dominate at 256 KiB values: {t_lean} vs {t_heavy}"
        );
    }

    #[test]
    fn failover_cost_scales_with_n() {
        let c8 = LeaderCluster::new(LeaderConfig::paper_default(8), model());
        let c512 = LeaderCluster::new(LeaderConfig::paper_default(512), model());
        let to = SimTime::from_ms(100);
        assert!(c512.leader_failover_time(to) > c8.leader_failover_time(to));
        assert!(c8.leader_failover_time(to) > to);
    }

    #[test]
    fn in_memory_leader_total_order() {
        let mut l = InMemoryLeader::new();
        let s0 = l.submit(3, Bytes::from_static(b"c"));
        let s1 = l.submit(1, Bytes::from_static(b"a"));
        let s2 = l.submit(2, Bytes::from_static(b"b"));
        assert_eq!((s0, s1, s2), (0, 1, 2));
        let seq = l.delivery_sequence();
        assert_eq!(seq.len(), 3);
        assert_eq!(seq[0].0, 3);
        assert_eq!(seq[1].0, 1);
        // Every "server" reads the same slice — total order is trivial
        // with a sequencer; the cost is the bottleneck, not the ordering.
    }

    #[test]
    fn clock_advances_across_rounds() {
        let mut c = LeaderCluster::new(LeaderConfig::paper_default(4), model());
        let t0 = c.clock();
        c.run_round(128);
        let t1 = c.clock();
        c.run_round(128);
        let t2 = c.clock();
        assert!(t0 < t1 && t1 < t2);
    }
}
