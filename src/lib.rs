#![warn(missing_docs)]
#![deny(deprecated)]
//! # AllConcur — leaderless concurrent atomic broadcast
//!
//! Umbrella crate re-exporting the full AllConcur stack. See the README
//! for an architecture overview and `DESIGN.md` for the paper-to-module
//! map.
//!
//! * [`graph`] — overlay digraphs: GS(n,d), binomial graphs, connectivity,
//!   fault diameter, reliability (§2.1.1, §4.4 of the paper);
//! * [`core`] — the AllConcur protocol itself: Algorithm 1 as a
//!   transport-agnostic state machine (§3);
//! * [`sim`] — discrete-event LogP simulator and benchmarking harness
//!   (§4, §5);
//! * [`net`] — sockets-based TCP transport and local cluster runtime (§5);
//! * [`cluster`] — the unified [`cluster::Cluster`] facade: one
//!   submit/deliver API over the simulated and TCP transports;
//! * [`rsm`] — the typed [`rsm::Service`] layer: replicated state
//!   machines with typed commands/responses, snapshot catch-up, and
//!   linearizable reads (§1's coordination services);
//! * [`durability`] — per-server write-ahead log with group commit,
//!   crash recovery from disk (whole-cluster power loss included), and
//!   chunked incremental catch-up; enable it with
//!   [`rsm::Service::with_durability`] and a `DurabilityConfig` — typed
//!   responses then become *durable* acknowledgments, withheld until
//!   the command's round is fsynced on at least one server;
//! * [`nemesis`] — deterministic fault-injection scenarios (partitions,
//!   loss, delay spikes, crash-restart churn) with an always-on
//!   atomic-broadcast property checker, replayable from a single seed;
//! * [`baselines`] — leader-based atomic broadcast (Libpaxos stand-in) and
//!   unreliable allgather (§4.5, §5).
//!
//! ## Quickstart
//!
//! ```
//! use allconcur::prelude::*;
//! use bytes::Bytes;
//! use std::time::Duration;
//!
//! // 8 servers on the GS(8,3) overlay of Fig. 1b, simulated over the
//! // paper's TCP LogP parameters; every server broadcasts one request.
//! // Swap `Cluster::sim` for `Cluster::tcp` and the same code runs over
//! // real sockets on loopback.
//! let overlay = gs_digraph(8, 3).unwrap();
//! let mut cluster = Cluster::sim(overlay);
//! let payloads: Vec<Bytes> = (0..8u8).map(|i| Bytes::from(vec![i; 64])).collect();
//! let round = cluster.run_round(&payloads, Duration::from_secs(10)).unwrap();
//! // Atomic broadcast: every server delivers the same 8 messages, in the
//! // same order.
//! let reference = &round[&0];
//! assert_eq!(reference.messages.len(), 8);
//! for delivery in round.values() {
//!     assert_eq!(delivery.messages, reference.messages);
//! }
//! ```
//!
//! The facade's streaming surface ([`cluster::Cluster::submit`] /
//! [`cluster::Cluster::deliveries`]) supports pipelined rounds, crash
//! and suspicion injection, and agreed reconfiguration — see the
//! `allconcur-cluster` crate docs.
//!
//! ## Typed replicated state machines
//!
//! Applications should not hand-pump deliveries: the [`rsm::Service`]
//! layer owns the cluster, encodes/decodes commands through a typed
//! [`core::replica::Codec`], and correlates each submitted command with
//! its typed response:
//!
//! ```
//! use allconcur::prelude::*;
//! use std::time::Duration;
//!
//! let cluster = Cluster::sim(gs_digraph(8, 3).unwrap());
//! let mut kv = Service::new(cluster, &KvStore::default()).unwrap();
//! let put = KvCommand::Put { key: b"k".to_vec().into(), value: b"v".to_vec().into() };
//! let handle = kv.submit(0, &put).unwrap();
//! assert_eq!(kv.wait(&handle, Duration::from_secs(10)).unwrap(), KvResponse::Ack);
//! kv.sync(Duration::from_secs(10)).unwrap(); // barrier: all replicas caught up
//! assert_eq!(kv.query_local(7).unwrap().get_local(b"k"), Some(&b"v"[..]));
//! ```

pub use allconcur_baselines as baselines;
pub use allconcur_cluster as cluster;
pub use allconcur_core as core;
pub use allconcur_durability as durability;
pub use allconcur_graph as graph;
pub use allconcur_nemesis as nemesis;
pub use allconcur_net as net;
pub use allconcur_rsm as rsm;
pub use allconcur_sim as sim;

/// Convenience re-exports covering the common entry points.
pub mod prelude {
    pub use allconcur_cluster::{
        Cluster, ClusterError, Delivery, FaultCommand, SimOptions, SimTransport, SubmitHandle,
        TcpTransport, Transport,
    };
    pub use allconcur_core::{
        config::Config,
        replica::{
            Codec, DecodeError, KvCodec, KvCommand, KvResponse, KvStore, Replica, RsmError,
            StateMachine,
        },
        server::{Action, Event, Server},
        ServerId,
    };
    pub use allconcur_durability::{
        rot_error, DurabilityConfig, DurabilityStore, FileDisk, MemDisk, MidLogRot, ScrubReport,
        VirtualDisk, Wal,
    };
    pub use allconcur_graph::{
        binomial::binomial_graph, gs::gs_digraph, Digraph, ReliabilityModel,
    };
    pub use allconcur_nemesis::{
        NemesisAction, NemesisPlan, PropertyChecker, Scenario, ScenarioReport,
    };
    pub use allconcur_rsm::{
        AdmissionConfig, CommandHandle, IntegrityStats, RecoveryReport, Service, ServiceError,
    };
    pub use allconcur_sim::{
        harness::{RoundOutcome, SimCluster},
        network::NetworkModel,
    };
    pub use bytes::Bytes;
}
