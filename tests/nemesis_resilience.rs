//! Resilience nemesis suite: transient link flaps and open-loop
//! overload, checked against the two resilience properties on top of
//! the always-on atomic-broadcast checker.
//!
//! Ten pinned seeds run on the discrete-event simulator — five
//! link-flap scenarios (even seeds: directed links sever and auto-heal
//! well inside the grace budget; the run must end with **zero
//! membership removals** and zero protocol-visible loss) and five
//! overload scenarios (odd seeds: submission bursts beyond the round
//! pipeline against a tight admission cap; every internal shed must
//! surface as a typed `Busy` — the internal and observed counters are
//! cross-checked, so nothing is shed silently).
//!
//! **Reproducing a failure:** execution is fully deterministic per
//! seed; replay with `Scenario::generate_resilience(seed).run_sim()`.
//! Failing runs print the scenario line plus the report's shed and
//! suspicion counters before panicking.

use allconcur_nemesis::{FaultClass, Scenario};

/// The pinned CI seeds — even = link-flap, odd = overload, spanning the
/// {1, 4, 8} round-window cycle in both classes.
const SEEDS: [u64; 10] = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9];

#[test]
fn pinned_resilience_seeds() {
    for seed in SEEDS {
        let scenario = Scenario::generate_resilience(seed);
        let report = scenario.run_sim().unwrap_or_else(|e| {
            panic!(
                "{scenario} FAILED: {e}\n\
                 (shed and suspicion counters are reported per run; rerun with \
                 `Scenario::generate_resilience({seed}).run_sim()` to replay byte-for-byte)"
            )
        });
        println!("{scenario}: shed={} suspicions={}", report.shed, report.suspicions);
        assert!(report.rounds > 0, "{scenario} delivered no rounds");
        assert!(report.resolved > 0, "{scenario} resolved no commands");
        match scenario.class {
            FaultClass::LinkFlap => {
                // Under-grace flaps must be invisible to admission too.
                assert_eq!(report.shed, 0, "{scenario} shed under a plain workload");
            }
            FaultClass::Overload => {
                // The burst is sized to overrun every window in {1,4,8}:
                // a shed-free run means admission control never engaged.
                assert!(report.shed > 0, "{scenario} never shed under an open-loop burst");
            }
            other => panic!("generate_resilience produced unexpected class {other}"),
        }
    }
}

#[test]
fn resilience_replays_byte_for_byte() {
    // The reproducibility contract behind the printed-seed workflow —
    // one seed per class.
    for seed in [4u64, 5] {
        let a = Scenario::generate_resilience(seed);
        let b = Scenario::generate_resilience(seed);
        assert_eq!(a.plan, b.plan, "seed {seed} plans diverged");
        assert_eq!(a.run_sim().unwrap(), b.run_sim().unwrap(), "seed {seed} executions diverged");
    }
}
