//! Integration tests over the real TCP transport: the same protocol state
//! machine as the simulator, but on 127.0.0.1 sockets with OS threads,
//! UDP heartbeats, and disconnect detection.

use allconcur::net::runtime::RuntimeOptions;
use allconcur::net::LocalCluster;
use allconcur_graph::binomial::binomial_graph;
use allconcur_graph::gs::gs_digraph;
use allconcur_graph::standard::complete_digraph;
use allconcur_sim::network::NetworkModel;
use allconcur_sim::SimCluster;
use bytes::Bytes;
use std::time::Duration;

fn payloads(n: usize) -> Vec<Bytes> {
    (0..n).map(|i| Bytes::from(format!("payload-{i}").into_bytes())).collect()
}

const ROUND_TIMEOUT: Duration = Duration::from_secs(20);

#[test]
fn tcp_agreement_on_three_topologies() {
    for (name, graph) in [
        ("complete(5)", complete_digraph(5)),
        ("gs(8,3)", gs_digraph(8, 3).unwrap()),
        ("binomial(9)", binomial_graph(9)),
    ] {
        let n = graph.order();
        let cluster = LocalCluster::spawn(graph, RuntimeOptions::default())
            .unwrap_or_else(|e| panic!("{name}: spawn failed: {e}"));
        let deliveries = cluster.run_round(&payloads(n), ROUND_TIMEOUT);
        let first = deliveries[0].as_ref().unwrap_or_else(|| panic!("{name}: server 0 timeout"));
        assert_eq!(first.messages.len(), n, "{name}");
        for (i, d) in deliveries.iter().enumerate() {
            let d = d.as_ref().unwrap_or_else(|| panic!("{name}: server {i} timeout"));
            assert_eq!(d.messages, first.messages, "{name}: total order violated at {i}");
        }
        cluster.shutdown();
    }
}

#[test]
fn tcp_and_simulator_agree_on_delivery_sequence() {
    // The deterministic delivery order (ascending origin id) means the
    // simulator and the TCP stack must produce byte-identical sequences
    // for the same inputs.
    let n = 8;
    let graph = gs_digraph(n, 3).unwrap();
    let ps = payloads(n);

    let mut sim = SimCluster::builder(graph.clone()).network(NetworkModel::tcp_cluster()).build();
    let sim_out = sim.run_round(&ps).unwrap();
    let sim_seq = &sim_out.delivered[&0];

    let tcp = LocalCluster::spawn(graph, RuntimeOptions::default()).unwrap();
    let tcp_deliveries = tcp.run_round(&ps, ROUND_TIMEOUT);
    let tcp_seq = &tcp_deliveries[0].as_ref().expect("tcp delivery").messages;

    assert_eq!(sim_seq, tcp_seq, "simulated and real transports must agree");
    tcp.shutdown();
}

#[test]
fn tcp_ten_rounds_sustained() {
    let n = 6;
    let cluster = LocalCluster::spawn(gs_digraph(n, 3).unwrap(), RuntimeOptions::default()).unwrap();
    for round in 0..10u64 {
        let deliveries = cluster.run_round(&payloads(n), ROUND_TIMEOUT);
        for (i, d) in deliveries.iter().enumerate() {
            let d = d.as_ref().unwrap_or_else(|| panic!("server {i} round {round}"));
            assert_eq!(d.round, round);
            assert_eq!(d.messages.len(), n);
        }
    }
    cluster.shutdown();
}

#[test]
fn tcp_crash_mid_deployment_recovers() {
    let n = 9;
    let mut cluster =
        LocalCluster::spawn(binomial_graph(n), RuntimeOptions::default()).unwrap();
    // Healthy round.
    let d0 = cluster.run_round(&payloads(n), ROUND_TIMEOUT);
    assert!(d0.iter().all(Option::is_some));

    // Kill two servers (binomial(9) has k = 6: plenty of margin).
    cluster.kill(7);
    cluster.kill(8);

    let ps = payloads(n);
    for (i, p) in ps.iter().enumerate() {
        if cluster.is_running(i as u32) {
            cluster.broadcast(i as u32, p.clone());
        }
    }
    let mut reference: Option<Vec<(u32, Bytes)>> = None;
    for i in 0..7u32 {
        let d = cluster
            .recv_delivery(i, ROUND_TIMEOUT)
            .unwrap_or_else(|| panic!("server {i} stuck after crashes"));
        let origins: Vec<u32> = d.messages.iter().map(|&(o, _)| o).collect();
        assert!(!origins.contains(&7) && !origins.contains(&8), "dead messages at {i}");
        match &reference {
            None => reference = Some(d.messages),
            Some(r) => assert_eq!(&d.messages, r, "set agreement violated at {i}"),
        }
    }
    // The system keeps running with 7 members.
    for (i, p) in ps.iter().enumerate().take(7) {
        cluster.broadcast(i as u32, p.clone());
    }
    for i in 0..7u32 {
        let d = cluster.recv_delivery(i, ROUND_TIMEOUT).expect("next round after recovery");
        assert_eq!(d.messages.len(), 7);
    }
    cluster.shutdown();
}

#[test]
fn tcp_empty_payload_round() {
    // Servers with nothing to say still participate with empty messages.
    let n = 5;
    let cluster = LocalCluster::spawn(complete_digraph(n), RuntimeOptions::default()).unwrap();
    let empties: Vec<Bytes> = vec![Bytes::new(); n];
    let deliveries = cluster.run_round(&empties, ROUND_TIMEOUT);
    for d in &deliveries {
        let d = d.as_ref().expect("all deliver");
        assert_eq!(d.messages.len(), n);
        assert!(d.messages.iter().all(|(_, b)| b.is_empty()));
    }
    cluster.shutdown();
}

#[test]
fn tcp_large_batched_payloads() {
    // Fig. 10-sized batches over real sockets: 2¹² × 8-byte requests.
    let n = 4;
    let cluster = LocalCluster::spawn(complete_digraph(n), RuntimeOptions::default()).unwrap();
    let batch = allconcur_core::batch::encode_fixed(1 << 12, 8, 0x5A);
    let ps: Vec<Bytes> = vec![batch.clone(); n];
    let deliveries = cluster.run_round(&ps, ROUND_TIMEOUT);
    for d in &deliveries {
        let d = d.as_ref().expect("all deliver");
        assert_eq!(d.messages.len(), n);
        for (_, payload) in &d.messages {
            assert_eq!(payload.len(), (1 << 12) * 8);
        }
    }
    cluster.shutdown();
}
