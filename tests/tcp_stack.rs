//! Integration tests over the real TCP transport, driven through the
//! unified `Cluster` facade: the same protocol state machine as the
//! simulator, but on 127.0.0.1 sockets with OS threads, UDP heartbeats,
//! and disconnect detection.

use allconcur::prelude::*;
use allconcur_graph::binomial::binomial_graph;
use allconcur_graph::gs::gs_digraph;
use allconcur_graph::standard::complete_digraph;
use bytes::Bytes;
use std::time::Duration;

fn payloads(n: usize) -> Vec<Bytes> {
    (0..n).map(|i| Bytes::from(format!("payload-{i}").into_bytes())).collect()
}

const ROUND_TIMEOUT: Duration = Duration::from_secs(20);

#[test]
fn tcp_agreement_on_three_topologies() {
    for (name, graph) in [
        ("complete(5)", complete_digraph(5)),
        ("gs(8,3)", gs_digraph(8, 3).unwrap()),
        ("binomial(9)", binomial_graph(9)),
    ] {
        let n = graph.order();
        let mut cluster =
            Cluster::tcp(graph).unwrap_or_else(|e| panic!("{name}: spawn failed: {e}"));
        let round = cluster
            .run_round(&payloads(n), ROUND_TIMEOUT)
            .unwrap_or_else(|e| panic!("{name}: round failed: {e}"));
        let first = &round[&0];
        assert_eq!(first.messages.len(), n, "{name}");
        for (i, d) in &round {
            assert_eq!(d.messages, first.messages, "{name}: total order violated at {i}");
        }
        cluster.shutdown().unwrap();
    }
}

#[test]
fn tcp_and_simulator_agree_on_delivery_sequence() {
    // The deterministic delivery order (ascending origin id) means the
    // simulator and the TCP stack must produce byte-identical sequences
    // for the same inputs — and the facade runs the identical scenario
    // code on both.
    let n = 8;
    let graph = gs_digraph(n, 3).unwrap();
    let ps = payloads(n);

    let mut sim = Cluster::sim(graph.clone());
    let sim_round = sim.run_round(&ps, ROUND_TIMEOUT).unwrap();

    let mut tcp = Cluster::tcp(graph).unwrap();
    let tcp_round = tcp.run_round(&ps, ROUND_TIMEOUT).unwrap();

    assert_eq!(
        sim_round[&0].messages, tcp_round[&0].messages,
        "simulated and real transports must agree"
    );
    tcp.shutdown().unwrap();
}

#[test]
fn tcp_ten_rounds_sustained() {
    let n = 6;
    let mut cluster = Cluster::tcp(gs_digraph(n, 3).unwrap()).unwrap();
    for round in 0..10u64 {
        let deliveries = cluster.run_round(&payloads(n), ROUND_TIMEOUT).unwrap();
        for (i, d) in &deliveries {
            assert_eq!(d.round, round, "server {i}");
            assert_eq!(d.messages.len(), n, "server {i} round {round}");
        }
    }
    cluster.shutdown().unwrap();
}

#[test]
fn tcp_crash_mid_deployment_recovers() {
    let n = 9;
    let mut cluster = Cluster::tcp(binomial_graph(n)).unwrap();
    // Healthy round.
    let d0 = cluster.run_round(&payloads(n), ROUND_TIMEOUT).unwrap();
    assert_eq!(d0.len(), n);

    // Kill two servers (binomial(9) has k = 6: plenty of margin).
    cluster.crash(7).unwrap();
    cluster.crash(8).unwrap();
    assert_eq!(cluster.live_servers().len(), 7);

    let round = cluster.run_round(&payloads(n), ROUND_TIMEOUT).unwrap();
    assert_eq!(round.len(), 7);
    let reference = &round[&1];
    for (i, d) in &round {
        let origins = d.origins();
        assert!(!origins.contains(&7) && !origins.contains(&8), "dead messages at {i}");
        assert_eq!(d.messages, reference.messages, "set agreement violated at {i}");
    }

    // The system keeps running with 7 members.
    let next = cluster.run_round(&payloads(n), ROUND_TIMEOUT).unwrap();
    assert_eq!(next.len(), 7);
    for d in next.values() {
        assert_eq!(d.messages.len(), 7);
    }
    cluster.shutdown().unwrap();
}

#[test]
fn tcp_empty_payload_round() {
    // Servers with nothing to say still participate with empty messages.
    let n = 5;
    let mut cluster = Cluster::tcp(complete_digraph(n)).unwrap();
    let empties: Vec<Bytes> = vec![Bytes::new(); n];
    let round = cluster.run_round(&empties, ROUND_TIMEOUT).unwrap();
    for d in round.values() {
        assert_eq!(d.messages.len(), n);
        assert!(d.messages.iter().all(|(_, b)| b.is_empty()));
    }
    cluster.shutdown().unwrap();
}

#[test]
fn tcp_large_batched_payloads() {
    // Fig. 10-sized batches over real sockets: 2¹² × 8-byte requests.
    let n = 4;
    let mut cluster = Cluster::tcp(complete_digraph(n)).unwrap();
    let batch = allconcur_core::batch::encode_fixed(1 << 12, 8, 0x5A);
    let ps: Vec<Bytes> = vec![batch.clone(); n];
    let round = cluster.run_round(&ps, ROUND_TIMEOUT).unwrap();
    for d in round.values() {
        assert_eq!(d.messages.len(), n);
        for (_, payload) in &d.messages {
            assert_eq!(payload.len(), (1 << 12) * 8);
        }
    }
    cluster.shutdown().unwrap();
}

#[test]
fn tcp_streaming_submit_and_handles() {
    // The streaming half of the facade on real sockets: submit through
    // handles, await the tracked payload, stream deliveries.
    let n = 5;
    let mut cluster = Cluster::tcp(complete_digraph(n)).unwrap();
    let handle = cluster.submit(2, Bytes::from_static(b"tracked-write")).unwrap();
    for id in 0..n as u32 {
        if id != 2 {
            cluster.submit(id, Bytes::new()).unwrap();
        }
    }
    let delivery = cluster.wait_delivered(&handle, ROUND_TIMEOUT).unwrap();
    assert_eq!(delivery.payload_of(2), Some(&Bytes::from_static(b"tracked-write")));
    // wait_delivered does not consume: the origin's stream still has it.
    let streamed = cluster.recv_delivery(2, ROUND_TIMEOUT).unwrap();
    assert_eq!(streamed, delivery);
    cluster.shutdown().unwrap();
}
