//! Round-window parity: pipelining is a **performance** knob, not a
//! semantics knob. For any submission schedule, the per-server delivery
//! streams under a round window `W > 1` must be byte-identical to the
//! sequential (`W = 1`) streams — same round numbering, same agreed
//! sets, same payload bytes — including across a mid-scenario crash.
//!
//! Two layers:
//!
//! * a proptest over the simulator: random overlay size, round count,
//!   payload shapes (empty payloads included), crash victim and crash
//!   position, each scenario replayed at several window sizes;
//! * a scripted real-sockets scenario (pipelined submission, crash,
//!   recovery rounds) compared across windows 1 and 4.
//!
//! The crash is injected at a *quiescent* round boundary in both runs —
//! with rounds in flight the crash round is timing-dependent under
//! pipelining (rounds already disseminated keep the victim's messages),
//! so a boundary crash is the strongest deterministic statement.

use allconcur::prelude::*;
use allconcur_cluster::SimOptions;
use allconcur_graph::gs::gs_digraph;
use allconcur_net::runtime::RuntimeOptions;
use bytes::Bytes;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(30);

/// One scenario: `pre` rounds with every server submitting, a quiescent
/// crash of `victim`, then `post` rounds among the survivors.
#[derive(Debug, Clone)]
struct Scenario {
    n: usize,
    degree: usize,
    pre: u64,
    post: u64,
    victim: ServerId,
    /// Per-round per-server payload sizes (0 = empty payload).
    sizes: Vec<Vec<usize>>,
}

/// Drive `scenario` on `cluster`, submitting every round's payloads
/// ahead of the delivery frontier (the pipelined surface) and draining
/// by per-server round counts. Returns every server's full delivery
/// history.
fn run_scenario(mut cluster: Cluster, sc: &Scenario) -> BTreeMap<ServerId, Vec<Delivery>> {
    let n = sc.n;
    let payload = |round: u64, id: ServerId| -> Bytes {
        let len = sc.sizes[round as usize % sc.sizes.len()][id as usize];
        Bytes::from(format!("r{round}-s{id}-{}", "x".repeat(len)).into_bytes())
    };
    let mut history: BTreeMap<ServerId, Vec<Delivery>> = BTreeMap::new();
    let drain = |cluster: &mut Cluster,
                 history: &mut BTreeMap<ServerId, Vec<Delivery>>,
                 live: &[ServerId],
                 upto: u64| {
        let mut counts: BTreeMap<ServerId, u64> = live.iter().map(|&id| (id, 0)).collect();
        while counts.values().any(|&k| k < upto) {
            let (id, delivery) = cluster
                .next_delivery(TIMEOUT)
                .unwrap_or_else(|e| panic!("[{}] delivery: {e}", cluster.backend()));
            if let Some(k) = counts.get_mut(&id) {
                *k += 1;
            }
            history.entry(id).or_default().push(delivery);
        }
    };

    // Phase 1: all `pre` rounds submitted up front — with a window W the
    // transport genuinely runs W of them concurrently.
    let all: Vec<ServerId> = (0..n as ServerId).collect();
    for round in 0..sc.pre {
        for &id in &all {
            cluster.submit(id, payload(round, id)).expect("submit");
        }
    }
    drain(&mut cluster, &mut history, &all, sc.pre);

    // Quiescent crash: every in-flight round has delivered everywhere.
    cluster.crash(sc.victim).expect("crash victim");
    let survivors: Vec<ServerId> = all.iter().copied().filter(|&id| id != sc.victim).collect();

    // Phase 2: `post` rounds among the survivors, again pipelined.
    for round in sc.pre..sc.pre + sc.post {
        for &id in &survivors {
            cluster.submit(id, payload(round, id)).expect("submit survivor");
        }
    }
    drain(&mut cluster, &mut history, &survivors, sc.post);

    cluster.shutdown().expect("clean shutdown");
    history
}

fn assert_identical(
    reference: &BTreeMap<ServerId, Vec<Delivery>>,
    other: &BTreeMap<ServerId, Vec<Delivery>>,
    label: &str,
    sc: &Scenario,
) {
    assert_eq!(
        reference.keys().collect::<Vec<_>>(),
        other.keys().collect::<Vec<_>>(),
        "{label}: server coverage differs ({sc:?})"
    );
    for (id, ref_seq) in reference {
        let other_seq = &other[id];
        assert_eq!(
            ref_seq.len(),
            other_seq.len(),
            "{label}: server {id} delivery count differs ({sc:?})"
        );
        for (a, b) in ref_seq.iter().zip(other_seq) {
            assert_eq!(a.round, b.round, "{label}: server {id} round numbering ({sc:?})");
            assert_eq!(
                a.messages, b.messages,
                "{label}: server {id} round {} delivered different bytes ({sc:?})",
                a.round
            );
        }
    }
}

/// Shape checks so parity cannot pass vacuously.
fn assert_shape(history: &BTreeMap<ServerId, Vec<Delivery>>, sc: &Scenario) {
    let survivor = (0..sc.n as ServerId).find(|&id| id != sc.victim).unwrap();
    let seq = &history[&survivor];
    assert_eq!(seq.len(), (sc.pre + sc.post) as usize);
    for (i, d) in seq.iter().enumerate() {
        assert_eq!(d.round, i as u64, "in-order delivery at the survivor");
        let has_victim = d.origins().contains(&sc.victim);
        assert_eq!(has_victim, (i as u64) < sc.pre, "victim excluded exactly post-crash");
    }
    assert_eq!(history[&sc.victim].len(), sc.pre as usize, "victim saw only pre-crash rounds");
}

/// Deterministically derive a scenario from primitive proptest inputs
/// (the vendored proptest is a plain generator — no combinators).
fn build_scenario(n: usize, pre: u64, post: u64, victim: u32, size_seed: u64) -> Scenario {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(size_seed);
    let sizes = (0..(pre + post) as usize)
        .map(|_| (0..n).map(|_| rng.gen_range(0usize..24)).collect())
        .collect();
    Scenario { n, degree: 3, pre, post, victim: victim % n as u32, sizes }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Simulator: every window size reproduces the sequential delivery
    /// streams byte-for-byte, crash included.
    #[test]
    fn sim_windowed_streams_match_sequential(
        n in 6usize..9,
        pre in 2u64..6,
        post in 1u64..5,
        victim in 0u32..9,
        size_seed in 0u64..u64::MAX,
    ) {
        let sc = build_scenario(n, pre, post, victim, size_seed);
        let graph = gs_digraph(sc.n, sc.degree).expect("GS overlay");
        let run = |window: usize| {
            let opts = SimOptions { round_window: window, ..SimOptions::default() };
            run_scenario(Cluster::sim_with(graph.clone(), opts), &sc)
        };
        let reference = run(1);
        assert_shape(&reference, &sc);
        for window in [2usize, 4, 8] {
            let windowed = run(window);
            assert_identical(&reference, &windowed, &format!("window {window}"), &sc);
        }
    }
}

/// Real sockets: the scripted pipelined scenario delivers identical
/// bytes under windows 1 and 4 — and identical to the simulator under
/// both, closing the loop with the cross-backend parity suite.
#[test]
fn tcp_windowed_streams_match_sequential() {
    let sc = Scenario {
        n: 8,
        degree: 3,
        pre: 5,
        post: 2,
        victim: 6,
        sizes: vec![vec![8, 0, 17, 3, 0, 11, 5, 2]],
    };
    let graph = gs_digraph(sc.n, sc.degree).expect("GS(8,3)");
    let tcp = |window: usize| {
        let opts = RuntimeOptions { round_window: window, ..RuntimeOptions::default() };
        run_scenario(Cluster::tcp_with(graph.clone(), opts).expect("loopback cluster"), &sc)
    };
    let sim_seq = run_scenario(
        Cluster::sim_with(graph.clone(), SimOptions { round_window: 4, ..SimOptions::default() }),
        &sc,
    );
    let sequential = tcp(1);
    assert_shape(&sequential, &sc);
    let windowed = tcp(4);
    assert_identical(&sequential, &windowed, "tcp window 4", &sc);
    assert_identical(&sequential, &sim_seq, "sim window 4 vs tcp", &sc);
}
