//! Integrity nemesis suite: wire bit-flip storms, silent replica
//! poison, and durable mid-log WAL rot, checked against the end-to-end
//! integrity properties on top of the always-on atomic-broadcast
//! checker.
//!
//! Ten pinned seeds run on the discrete-event simulator, cycling three
//! corruption regimes with `seed % 3`:
//!
//! * **bit-flip** (`seed % 3 == 0`): probabilistic single-bit flips on
//!   two or three overlay links. Every flip must be CRC-detected at the
//!   frame boundary and discarded — the divergence audit runs
//!   throughout and must see **zero** diverged replicas, while the flip
//!   counter proves the storm actually happened;
//! * **divergence** (`seed % 3 == 1`): one replica's applied state is
//!   silently poisoned outside agreement. The digest cross-check must
//!   quarantine it typed, heal it from a peer snapshot, and reconverge
//!   — a stuck quarantine or an undetected poison fails the run;
//! * **disk-rot** (`seed % 3 == 2`): one bit is durably flipped inside
//!   a server's write-ahead log (acknowledged history), then the whole
//!   deployment power-fails. Recovery must classify the damage as rot
//!   — never trim it as a torn tail — and rebuild that server from its
//!   peers with nothing acknowledged lost.
//!
//! **Reproducing a failure:** execution is fully deterministic per
//! seed; replay with `Scenario::generate_integrity(seed).run_sim()`.
//! Failing runs print the scenario line plus the report's integrity
//! counters before panicking.

use allconcur_nemesis::{FaultClass, Scenario};

/// The pinned CI seeds — `seed % 3` cycles bit-flip / divergence /
/// disk-rot, spanning the {1, 4, 8} round-window cycle.
const SEEDS: [u64; 10] = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9];

#[test]
fn pinned_integrity_seeds() {
    for seed in SEEDS {
        let scenario = Scenario::generate_integrity(seed);
        let report = scenario.run_sim().unwrap_or_else(|e| {
            panic!(
                "{scenario} FAILED: {e}\n\
                 (integrity counters are reported per run; rerun with \
                 `Scenario::generate_integrity({seed}).run_sim()` to replay byte-for-byte)"
            )
        });
        println!(
            "{scenario}: flipped={} quarantines={} rejoins={} rotted={}",
            report.flipped, report.quarantines, report.rejoins, report.rotted
        );
        assert!(report.rounds > 0, "{scenario} delivered no rounds");
        match scenario.class {
            FaultClass::BitFlip => {
                // The storm must be real and fully absorbed at the wire:
                // flips counted, nothing leaked into applied state.
                assert!(report.flipped > 0, "{scenario} never flipped a bit");
                assert_eq!(report.quarantines, 0, "{scenario}: a flip leaked past the CRC");
                assert!(report.resolved > 0, "{scenario} resolved no commands under flips");
            }
            FaultClass::Divergence => {
                // The full detect → quarantine → rejoin cycle ran.
                assert!(report.quarantines >= 1, "{scenario} never caught the poison");
                assert!(report.rejoins >= 1, "{scenario} never healed the quarantine");
            }
            FaultClass::DiskRot => {
                // Recovery refused the rotted log and rebuilt from peers.
                assert_eq!(report.rotted, 1, "{scenario}: the rot was not detected");
                assert!(report.recoveries >= 1, "{scenario} never recovered");
            }
            other => panic!("generate_integrity produced unexpected class {other}"),
        }
    }
}

#[test]
fn integrity_replays_byte_for_byte() {
    // The reproducibility contract behind the printed-seed workflow —
    // one seed per class.
    for seed in [0u64, 1, 2] {
        let a = Scenario::generate_integrity(seed);
        let b = Scenario::generate_integrity(seed);
        assert_eq!(a.plan, b.plan, "seed {seed} plans diverged");
        assert_eq!(a.run_sim().unwrap(), b.run_sim().unwrap(), "seed {seed} executions diverged");
    }
}
