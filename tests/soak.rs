//! Soak test: a longer-lived deployment with repeated failures,
//! reconfigurations, and sustained rounds — the closest the test suite
//! gets to the paper's multi-minute Fig. 7 runs.

use allconcur_core::config::FdMode;
use allconcur_core::membership::plan_reconfiguration;
use allconcur_graph::ReliabilityModel;
use allconcur_sim::network::{Jitter, NetworkModel};
use allconcur_sim::{SimCluster, SimTime};
use bytes::Bytes;

#[test]
fn thirty_rounds_with_periodic_crashes_and_reconfigs() {
    let model = ReliabilityModel::paper_default();
    let mut n = 16usize;
    let mut cluster = new_cluster(n, SimTime::ZERO, 0);
    let mut total_rounds = 0u64;
    let mut crashes = 0usize;

    for epoch in 0..3 {
        // Run rounds, crashing one server partway through each epoch.
        for r in 0..10u64 {
            if r == 4 {
                // Crash the highest live server mid-epoch.
                let victim = *cluster.live_servers().last().expect("nonempty");
                cluster.schedule_crash(cluster.clock(), victim);
                crashes += 1;
            }
            let payloads: Vec<Bytes> = (0..n)
                .map(|i| Bytes::from(format!("e{epoch}-r{r}-s{i}").into_bytes()))
                .collect();
            let out = cluster.run_round(&payloads).unwrap_or_else(|e| {
                panic!("epoch {epoch} round {r} failed: {e}")
            });
            total_rounds += 1;
            // All deliverers agree.
            let reference = out.delivered.values().next().expect("someone delivered").clone();
            for (s, seq) in &out.delivered {
                assert_eq!(seq, &reference, "divergence at epoch {epoch} round {r} server {s}");
            }
        }
        // Reconfigure: survivors + one joiner on a fresh overlay.
        let survivors = cluster.live_servers();
        let plan = plan_reconfiguration(&survivors, &[], 1, &model, 6.0, FdMode::Perfect);
        n = plan.config.n();
        let resume = cluster.clock() + SimTime::from_ms(80);
        cluster = SimCluster::builder((*plan.config.graph).clone())
            .network(
                NetworkModel::ib_verbs().with_jitter(Jitter::Uniform { max_ns: 1_000 }),
            )
            .fd_detection_delay(SimTime::from_us(100))
            .seed(epoch as u64 + 1)
            .start_clock(resume)
            .build();
    }

    assert_eq!(total_rounds, 30);
    assert_eq!(crashes, 3);
    // Net membership: 16 − 3 crashes + 3 joins = 16.
    assert_eq!(n, 16);
}

fn new_cluster(n: usize, start: SimTime, seed: u64) -> SimCluster {
    let overlay = allconcur_core::membership::build_overlay(
        n,
        &ReliabilityModel::paper_default(),
        6.0,
    );
    SimCluster::builder(overlay)
        .network(NetworkModel::ib_verbs().with_jitter(Jitter::Uniform { max_ns: 1_000 }))
        .fd_detection_delay(SimTime::from_us(100))
        .seed(seed)
        .start_clock(start)
        .build()
}
