//! Soak test: a longer-lived deployment with repeated failures,
//! reconfigurations, and sustained rounds — the closest the test suite
//! gets to the paper's multi-minute Fig. 7 runs. Driven entirely through
//! the `Cluster` facade, including the agreed reconfigurations.

use allconcur::prelude::*;
use allconcur_core::config::FdMode;
use allconcur_core::membership::{build_overlay, plan_reconfiguration};
use allconcur_sim::failure::FailurePlan;
use allconcur_sim::network::{Jitter, NetworkModel};
use allconcur_sim::SimTime;
use bytes::Bytes;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(30);

fn sim_options(seed: u64) -> SimOptions {
    SimOptions {
        network: NetworkModel::ib_verbs().with_jitter(Jitter::Uniform { max_ns: 1_000 }),
        fd_delay: SimTime::from_us(100),
        seed,
        ..SimOptions::default()
    }
}

#[test]
fn thirty_rounds_with_periodic_crashes_and_reconfigs() {
    let model = ReliabilityModel::paper_default();
    let mut n = 16usize;
    let overlay = build_overlay(n, &model, 6.0);
    let mut cluster = Cluster::sim_with(overlay, sim_options(0));
    let mut total_rounds = 0u64;
    let mut crashes = 0usize;

    for epoch in 0..3 {
        // Run rounds, crashing one server partway through each epoch.
        for r in 0..10u64 {
            if r == 4 {
                // Crash the highest live server mid-epoch.
                let victim = *cluster.live_servers().last().expect("nonempty");
                cluster.crash(victim).unwrap();
                crashes += 1;
            }
            let payloads: Vec<Bytes> =
                (0..n).map(|i| Bytes::from(format!("e{epoch}-r{r}-s{i}").into_bytes())).collect();
            let out = cluster
                .run_round(&payloads, TIMEOUT)
                .unwrap_or_else(|e| panic!("epoch {epoch} round {r} failed: {e}"));
            total_rounds += 1;
            // All deliverers agree.
            let reference = out.values().next().expect("someone delivered").clone();
            for (s, d) in &out {
                assert_eq!(
                    d.messages, reference.messages,
                    "divergence at epoch {epoch} round {r} server {s}"
                );
            }
        }
        // Reconfigure: survivors + one joiner on a fresh overlay, agreed
        // by every member (§3's dynamic membership).
        let survivors = cluster.live_servers();
        let plan = plan_reconfiguration(&survivors, &[], 1, &model, 6.0, FdMode::Perfect);
        n = plan.config.n();
        cluster.reconfigure((*plan.config.graph).clone()).unwrap();
        assert_eq!(cluster.n(), n);
        assert_eq!(cluster.live_servers().len(), n, "everyone alive after reconfig");
    }

    assert_eq!(total_rounds, 30);
    assert_eq!(crashes, 3);
    // Net membership: 16 − 3 crashes + 3 joins = 16.
    assert_eq!(n, 16);
}

#[test]
fn nemesis_scenario_on_sim_backend_fixed_seed() {
    // One generated nemesis scenario under a pinned seed — seed 10 is
    // partition+heal at window 8. Fully deterministic: a failure here
    // replays with `Scenario::generate(10).run_sim()`.
    let scenario = Scenario::generate(10);
    let report = scenario.run_sim().unwrap_or_else(|e| panic!("{scenario} on sim: {e}"));
    assert!(report.rounds > 0, "{scenario}: no rounds agreed");
    assert!(report.resolved > 0, "{scenario}: no commands resolved");
}

#[test]
fn nemesis_scenario_on_tcp_backend_fixed_seed() {
    // The same scenario machinery over real sockets — seed 6 is
    // crash-restart at window 4, the fault family TCP fully supports
    // (crash via node teardown, rejoin via respawn + snapshot
    // catch-up). The tick budget is wall-clock here, so give loopback
    // rounds more room than the simulator needs.
    let scenario = Scenario::generate(6).with_tick_budget(Duration::from_millis(100));
    let cluster = Cluster::tcp(scenario.overlay()).expect("spawn loopback cluster");
    let report = scenario.run_on(cluster).unwrap_or_else(|e| panic!("{scenario} on tcp: {e}"));
    assert!(report.rounds > 0, "{scenario}: no rounds agreed");
    assert!(report.resolved > 0, "{scenario}: no commands resolved");
    assert!(report.epochs > 1, "{scenario}: the rejoin path never ran");
}

#[test]
fn exponential_failure_plan_replays_from_logged_seed() {
    // §4.2.2's MTTF-driven crash model, reproducible from one logged
    // seed: two runs built from the same seed must produce identical
    // plans *and* identical executions.
    let logged_seed = 0x5eed_cafe;
    let plan = |seed| {
        FailurePlan::exponential_seeded(8, SimTime::from_secs(1), SimTime::from_ms(500), seed)
    };
    assert_eq!(plan(logged_seed).events(), plan(logged_seed).events());

    let run = |seed: u64| {
        let mut cluster =
            allconcur_sim::SimCluster::builder(allconcur_graph::standard::complete_digraph(8))
                .network(NetworkModel::ib_verbs().with_jitter(Jitter::Uniform { max_ns: 2_000 }))
                .fd_detection_delay(SimTime::from_us(100))
                .failures(plan(seed))
                .seed(seed)
                .build();
        let payloads: Vec<Bytes> = (0..8).map(|i| Bytes::from(vec![i as u8; 24])).collect();
        let out = cluster.run_round(&payloads).expect("complete digraph shrugs off the crashes");
        let reference: Vec<(ServerId, Bytes)> =
            out.delivered.values().next().expect("someone delivered").clone();
        for seq in out.delivered.values() {
            assert_eq!(seq, &reference, "agreement under the sampled crash schedule");
        }
        (out.agreement_latency(), out.messages_sent, out.bytes_sent, reference)
    };
    assert_eq!(run(logged_seed), run(logged_seed), "byte-identical replay from the logged seed");
}

#[test]
fn sustained_durable_workload_scrubs_clean_every_epoch() {
    // The online-scrub soak: a durable deployment runs a sustained
    // workload, and after every batch a full read-only scrub of every
    // server's write-ahead log must verify byte-for-byte — frames,
    // epoch tags, round slots, and the newest snapshot. Rot found here
    // (there is none to find on a healthy disk model) would be caught
    // *before* the next crash stakes recovery on the log.
    let n = 6usize;
    let overlay = gs_digraph(n, 3).expect("valid overlay");
    let mut kv = Service::with_durability(
        Cluster::sim_with(overlay, sim_options(42)),
        &KvStore::default(),
        DurabilityStore::memory(n),
        DurabilityConfig::deterministic(2),
    )
    .expect("construct durable service");
    let mut scrubbed_frames = 0u64;
    for batch in 0..6u64 {
        for uid in 0..8u64 {
            let origin = ((batch * 8 + uid) % n as u64) as ServerId;
            let cmd = KvCommand::Put {
                key: (batch * 8 + uid).to_le_bytes().to_vec().into(),
                value: b"soak-scrub".to_vec().into(),
            };
            kv.execute(origin, &cmd, TIMEOUT).expect("durable ack");
        }
        for id in 0..n as ServerId {
            let report = kv
                .scrub_wal(id)
                .expect("durability is on")
                .unwrap_or_else(|e| panic!("batch {batch}: server {id} failed its scrub: {e}"));
            assert!(report.snapshot_ok, "batch {batch}: server {id} snapshot failed verification");
            assert!(report.torn.is_none(), "batch {batch}: phantom torn tail on server {id}");
            scrubbed_frames += report.frames;
        }
    }
    assert!(scrubbed_frames > 0, "the scrub never verified a frame");
}
