//! Soak test: a longer-lived deployment with repeated failures,
//! reconfigurations, and sustained rounds — the closest the test suite
//! gets to the paper's multi-minute Fig. 7 runs. Driven entirely through
//! the `Cluster` facade, including the agreed reconfigurations.

use allconcur::prelude::*;
use allconcur_core::config::FdMode;
use allconcur_core::membership::{build_overlay, plan_reconfiguration};
use allconcur_sim::network::{Jitter, NetworkModel};
use allconcur_sim::SimTime;
use bytes::Bytes;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(30);

fn sim_options(seed: u64) -> SimOptions {
    SimOptions {
        network: NetworkModel::ib_verbs().with_jitter(Jitter::Uniform { max_ns: 1_000 }),
        fd_delay: SimTime::from_us(100),
        seed,
        ..SimOptions::default()
    }
}

#[test]
fn thirty_rounds_with_periodic_crashes_and_reconfigs() {
    let model = ReliabilityModel::paper_default();
    let mut n = 16usize;
    let overlay = build_overlay(n, &model, 6.0);
    let mut cluster = Cluster::sim_with(overlay, sim_options(0));
    let mut total_rounds = 0u64;
    let mut crashes = 0usize;

    for epoch in 0..3 {
        // Run rounds, crashing one server partway through each epoch.
        for r in 0..10u64 {
            if r == 4 {
                // Crash the highest live server mid-epoch.
                let victim = *cluster.live_servers().last().expect("nonempty");
                cluster.crash(victim).unwrap();
                crashes += 1;
            }
            let payloads: Vec<Bytes> =
                (0..n).map(|i| Bytes::from(format!("e{epoch}-r{r}-s{i}").into_bytes())).collect();
            let out = cluster
                .run_round(&payloads, TIMEOUT)
                .unwrap_or_else(|e| panic!("epoch {epoch} round {r} failed: {e}"));
            total_rounds += 1;
            // All deliverers agree.
            let reference = out.values().next().expect("someone delivered").clone();
            for (s, d) in &out {
                assert_eq!(
                    d.messages, reference.messages,
                    "divergence at epoch {epoch} round {r} server {s}"
                );
            }
        }
        // Reconfigure: survivors + one joiner on a fresh overlay, agreed
        // by every member (§3's dynamic membership).
        let survivors = cluster.live_servers();
        let plan = plan_reconfiguration(&survivors, &[], 1, &model, 6.0, FdMode::Perfect);
        n = plan.config.n();
        cluster.reconfigure((*plan.config.graph).clone()).unwrap();
        assert_eq!(cluster.n(), n);
        assert_eq!(cluster.live_servers().len(), n, "everyone alive after reconfig");
    }

    assert_eq!(total_rounds, 30);
    assert_eq!(crashes, 3);
    // Net membership: 16 − 3 crashes + 3 joins = 16.
    assert_eq!(n, 16);
}
