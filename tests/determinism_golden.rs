//! Golden-transcript determinism: the dense-data-layout hot path must be
//! *observationally identical* to the reference semantics of Algorithm 1,
//! down to the byte order of every action.
//!
//! Two layers of defence against iteration-order regressions (the main
//! hazard of migrating the per-round `BTreeMap`/`BTreeSet` state to
//! id-indexed `Vec`s and bitsets):
//!
//! 1. a scripted mixed scenario — partial-broadcast crash plus the ◇P
//!    FWD/BWD decision protocol — is driven deterministically through raw
//!    [`Server`]s and the **full action stream** (every `Send`, every
//!    `Deliver`, in emission order) is hashed against a recorded golden
//!    value;
//! 2. the same facade scenario runs over the simulator and over real TCP
//!    sockets, and the delivery streams must be byte-identical.
//!
//! The golden hash was recorded from the original sorted-map
//! implementation (PR 2); any change to flood order, delivery order,
//! carried-notification replay order, or the FWD/BWD gate shows up as a
//! hash mismatch here before it can silently break cross-backend parity.

use allconcur_core::config::{Config, FdMode};
use allconcur_core::message::Message;
use allconcur_core::server::{Action, Event, Server};
use allconcur_core::ServerId;
use allconcur_graph::gs::gs_digraph;
use bytes::Bytes;
use std::collections::VecDeque;
use std::sync::Arc;

/// FNV-1a 64-bit — tiny, dependency-free, and stable across platforms.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf29ce484222325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }

    fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }
}

/// Lockstep driver for the scripted scenario: FIFO inbox, a
/// partial-broadcast victim, and a running transcript hash over every
/// action in global emission order.
struct Harness {
    servers: Vec<Server>,
    inbox: VecDeque<(ServerId, ServerId, Message)>,
    hash: Fnv,
    delivered: Vec<Vec<(ServerId, Bytes)>>,
    victim: ServerId,
    victim_sends_left: usize,
}

impl Harness {
    fn feed(&mut self, id: ServerId, event: Event) {
        for action in self.servers[id as usize].handle(event) {
            self.hash_action(id, &action);
            match action {
                Action::Send { to, msg } => {
                    if id == self.victim {
                        // Partial broadcast (§2.3): only the first k
                        // sends physically leave before the crash.
                        if self.victim_sends_left == 0 {
                            continue;
                        }
                        self.victim_sends_left -= 1;
                    }
                    if to == self.victim {
                        continue; // crashed servers receive nothing
                    }
                    self.inbox.push_back((id, to, msg));
                }
                Action::Deliver { messages, .. } => {
                    self.delivered[id as usize].extend(messages);
                }
            }
        }
    }

    fn drain(&mut self) {
        while let Some((from, to, msg)) = self.inbox.pop_front() {
            self.feed(to, Event::Receive { from, msg });
        }
    }

    /// Fold one action (emitted by `actor`) into the transcript hash.
    /// Every field that reaches the wire or the application is covered.
    fn hash_action(&mut self, actor: ServerId, action: &Action) {
        let h = &mut self.hash;
        match action {
            Action::Send { to, msg } => {
                h.write_u32(0xA0);
                h.write_u32(actor);
                h.write_u32(*to);
                h.write(&msg.to_bytes());
            }
            Action::Deliver { round, messages } => {
                h.write_u32(0xB0);
                h.write_u32(actor);
                h.write_u64(*round);
                h.write_u32(messages.len() as u32);
                for (origin, payload) in messages {
                    h.write_u32(*origin);
                    h.write_u32(payload.len() as u32);
                    h.write(payload);
                }
            }
        }
    }
}

/// The scripted mixed scenario, fully deterministic:
///
/// * GS(8,3) overlay, ◇P mode (so termination exercises FWD/BWD);
/// * round 0: all 8 servers A-broadcast, but server 5 crashes after its
///   first two sends (partial broadcast, §2.3);
/// * once the flood drains, every successor of 5 suspects it (ascending
///   id order), driving FAIL floods, tracking expansion/refutation, and
///   the majority decision among the 7 survivors;
/// * round 1: the survivors broadcast again (exercising carried
///   notifications and the shrunken overlay view).
fn run_scripted_scenario() -> (u64, Vec<Vec<(ServerId, Bytes)>>) {
    let graph = Arc::new(gs_digraph(8, 3).unwrap());
    let cfg = Config {
        graph: graph.clone(),
        resilience: 2,
        fd_mode: FdMode::EventuallyPerfect,
        round_window: 1,
    };
    let n = 8usize;
    let victim: ServerId = 5;

    let mut h = Harness {
        servers: (0..n as ServerId).map(|i| Server::new(cfg.clone(), i)).collect(),
        inbox: VecDeque::new(),
        hash: Fnv::new(),
        delivered: vec![Vec::new(); n],
        victim,
        victim_sends_left: 2,
    };

    // Round 0 kickoff: ascending id order, victim included (it crashes
    // mid-broadcast).
    for i in 0..n as ServerId {
        h.feed(i, Event::ABroadcast(Bytes::from(vec![0x10 + i as u8; 8])));
    }
    h.drain();

    // FD: every successor of the victim suspects it, ascending.
    let mut successors: Vec<ServerId> = graph.successors(victim).to_vec();
    successors.sort_unstable();
    for s in successors {
        h.feed(s, Event::Suspect { suspect: victim });
    }
    h.drain();

    // Round 1 among the survivors.
    for i in 0..n as ServerId {
        if i != victim {
            h.feed(i, Event::ABroadcast(Bytes::from(vec![0x40 + i as u8; 8])));
        }
    }
    h.drain();

    (h.hash.0, h.delivered)
}

/// The recorded transcript hash of the scripted scenario. Recorded from
/// the sorted-map reference implementation; the dense data layout must
/// reproduce it exactly. If a deliberate semantic change to the protocol
/// (not a data-layout change!) alters the transcript, re-record with
/// `GOLDEN_RECORD=1 cargo test -q golden -- --nocapture` and say why in
/// the commit.
const GOLDEN_TRANSCRIPT_HASH: u64 = 0xbd08a26653a9a87e;

#[test]
fn scripted_mixed_scenario_matches_golden_transcript() {
    let (hash, delivered) = run_scripted_scenario();

    // Structural sanity first, so a wrong hash is debuggable: the seven
    // survivors agree on both rounds; the victim's partial broadcast was
    // relayed, so m5 is part of round 0.
    let reference = &delivered[0];
    assert_eq!(reference.len(), 8 + 7, "round 0 (8 origins) + round 1 (7 origins)");
    for (id, log) in delivered.iter().enumerate() {
        if id == 5 {
            continue;
        }
        assert_eq!(log, reference, "server {id} diverged");
    }
    let round0_origins: Vec<ServerId> = reference[..8].iter().map(|&(o, _)| o).collect();
    assert_eq!(round0_origins, (0..8).collect::<Vec<_>>(), "m5 relayed by its 2 successors");
    let round1_origins: Vec<ServerId> = reference[8..].iter().map(|&(o, _)| o).collect();
    assert_eq!(round1_origins, vec![0, 1, 2, 3, 4, 6, 7], "victim excluded in round 1");

    if std::env::var_os("GOLDEN_RECORD").is_some() {
        println!("GOLDEN_TRANSCRIPT_HASH: {hash:#018x}");
        return;
    }
    assert_eq!(
        hash, GOLDEN_TRANSCRIPT_HASH,
        "action transcript changed: got {hash:#018x} — iteration-order regression in the \
         dense round state, or a deliberate protocol change (re-record if so)"
    );
}

/// Cross-backend byte parity of the delivery stream under a crash — the
/// facade-level counterpart of the raw-server golden transcript. Hashes
/// (rather than stores) the streams so a regression reports a compact
/// fingerprint per backend.
#[test]
fn sim_and_tcp_delivery_streams_hash_identically() {
    use allconcur_cluster::Cluster;
    use std::time::Duration;

    let timeout = Duration::from_secs(20);
    let run = |mut cluster: Cluster| -> u64 {
        let n = cluster.n();
        let mut hash = Fnv::new();
        let payloads = |round: u64| -> Vec<Bytes> {
            (0..n).map(|i| Bytes::from(format!("g{round}-{i}").into_bytes())).collect()
        };
        let hash_round = |hash: &mut Fnv,
                          out: std::collections::BTreeMap<
            ServerId,
            allconcur_core::delivery::Delivery,
        >| {
            for (id, delivery) in out {
                hash.write_u32(id);
                hash.write_u64(delivery.round);
                for (origin, payload) in &delivery.messages {
                    hash.write_u32(*origin);
                    hash.write(payload);
                }
            }
        };
        for round in 0..2u64 {
            let out = cluster.run_round(&payloads(round), timeout).unwrap();
            hash_round(&mut hash, out);
        }
        cluster.crash(2).expect("crash server 2");
        for round in 2..4u64 {
            let out = cluster.run_round(&payloads(round), timeout).unwrap();
            assert_eq!(out.len(), n - 1);
            hash_round(&mut hash, out);
        }
        cluster.shutdown().expect("clean shutdown");
        hash.0
    };

    let graph = gs_digraph(8, 3).unwrap();
    let sim = run(Cluster::sim(graph.clone()));
    let tcp = run(Cluster::tcp(graph).expect("loopback cluster"));
    assert_eq!(sim, tcp, "delivery streams diverged between sim ({sim:#x}) and tcp ({tcp:#x})");
}
