//! End-to-end replicated state machine on top of AllConcur: the
//! coordination-service usage the paper's introduction motivates. A
//! key-value store replicated across a cluster stays identical on every
//! server across rounds, batching, and crashes — driven through the
//! unified `Cluster` facade, so the identical scenario also runs over
//! the TCP backend by swapping the constructor.

use allconcur::prelude::*;
use allconcur_core::batch::Batcher;
use allconcur_core::replica::KvOutput;
use allconcur_graph::gs::gs_digraph;
use allconcur_sim::SimTime;
use bytes::Bytes;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(20);

fn ib_cluster(n: usize) -> Cluster {
    Cluster::sim_with(
        gs_digraph(n, 3).unwrap(),
        SimOptions { network: NetworkModel::ib_verbs(), ..SimOptions::default() },
    )
}

#[test]
fn kv_store_replicates_across_rounds() {
    let n = 8usize;
    let mut cluster = ib_cluster(n);
    let mut replicas: Vec<Replica<KvStore>> =
        (0..n).map(|_| Replica::new(KvStore::default())).collect();

    for round in 0..5u64 {
        // Each server batches a couple of writes.
        let payloads: Vec<Bytes> = (0..n)
            .map(|s| {
                let mut b = Batcher::new();
                b.push(KvStore::put_command(
                    format!("key-{s}-{round}").as_bytes(),
                    format!("value-{round}").as_bytes(),
                ));
                if round % 2 == 0 {
                    b.push(KvStore::put_command(b"shared", format!("{s}:{round}").as_bytes()));
                }
                b.take_batch()
            })
            .collect();
        let out = cluster.run_round(&payloads, TIMEOUT).unwrap();
        for (s, replica) in replicas.iter_mut().enumerate() {
            let delivery = &out[&(s as u32)];
            assert_eq!(delivery.round, round);
            replica.apply_round(round, &delivery.messages, true);
        }
    }

    // Strong consistency: identical state everywhere, including the
    // contended "shared" key — last agreed write wins identically.
    let reference = replicas[0].query().clone();
    for (i, r) in replicas.iter().enumerate() {
        assert_eq!(r.query(), &reference, "replica {i} diverged");
        assert_eq!(r.applied_rounds(), 5);
    }
    // shared key: written by all servers in rounds 0, 2, 4; agreement
    // order is origin-ascending, so the last writer is server n−1 of the
    // last even round.
    assert_eq!(reference.get_local(b"shared"), Some(format!("{}:4", n - 1).as_bytes()));
    assert_eq!(reference.len(), n * 5 + 1);
}

#[test]
fn kv_store_survives_crash_consistently() {
    let n = 8usize;
    let mut cluster = Cluster::sim_with(
        gs_digraph(n, 3).unwrap(),
        SimOptions {
            network: NetworkModel::ib_verbs(),
            fd_delay: SimTime::from_us(50),
            ..SimOptions::default()
        },
    );
    let mut replicas: Vec<Option<Replica<KvStore>>> =
        (0..n).map(|_| Some(Replica::new(KvStore::default()))).collect();

    // Round 0: all write.
    let payloads: Vec<Bytes> = (0..n)
        .map(|s| {
            let mut b = Batcher::new();
            b.push(KvStore::put_command(format!("k{s}").as_bytes(), b"v0"));
            b.take_batch()
        })
        .collect();
    let out = cluster.run_round(&payloads, TIMEOUT).unwrap();
    for (s, r) in replicas.iter_mut().enumerate() {
        r.as_mut().expect("alive").apply_round(0, &out[&(s as u32)].messages, true);
    }

    // Server 7 crashes; round 1 proceeds without it.
    cluster.crash(7).unwrap();
    replicas[7] = None;
    let out = cluster.run_round(&payloads, TIMEOUT).unwrap();
    assert_eq!(out.len(), 7);
    let survivors: Vec<usize> = (0..7).collect();
    for &s in &survivors {
        replicas[s].as_mut().expect("alive").apply_round(1, &out[&(s as u32)].messages, true);
    }
    let reference = replicas[0].as_ref().expect("alive").query().clone();
    for &s in &survivors {
        assert_eq!(replicas[s].as_ref().expect("alive").query(), &reference);
    }
    // k7 was written in round 0 (before the crash) and survives; its
    // round-1 write is absent but k0..k6 were overwritten identically.
    assert_eq!(reference.get_local(b"k7"), Some(&b"v0"[..]));

    // Serialized read via round 2: agreement on the read point.
    let mut read_batch = Batcher::new();
    read_batch.push(KvStore::get_command(b"k3"));
    let mut payloads2: Vec<Bytes> = vec![Bytes::new(); n];
    payloads2[0] = read_batch.take_batch();
    let out = cluster.run_round(&payloads2, TIMEOUT).unwrap();
    for &s in &survivors {
        let outputs =
            replicas[s].as_mut().expect("alive").apply_round(2, &out[&(s as u32)].messages, true);
        assert_eq!(outputs, vec![KvOutput::Value(Some(b"v0".to_vec()))], "server {s}");
    }
}
