//! End-to-end replicated state machine on top of AllConcur, through the
//! typed `Service` API: a key-value store replicated across a cluster
//! stays identical on every server across rounds, batching, and
//! crashes — commands go in typed, responses come out typed, and the
//! identical scenario also runs over the TCP backend by swapping the
//! constructor (see `tests/rsm_parity.rs`).
#![deny(deprecated)]

use allconcur::prelude::*;
use allconcur_graph::gs::gs_digraph;
use allconcur_sim::network::NetworkModel;
use allconcur_sim::SimTime;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(20);

fn put(key: impl Into<Bytes>, value: impl Into<Bytes>) -> KvCommand {
    KvCommand::Put { key: key.into(), value: value.into() }
}

fn ib_cluster(n: usize) -> Cluster {
    Cluster::sim_with(
        gs_digraph(n, 3).unwrap(),
        SimOptions { network: NetworkModel::ib_verbs(), ..SimOptions::default() },
    )
}

#[test]
fn kv_store_replicates_across_rounds() {
    let n = 8usize;
    let mut kv = Service::new(ib_cluster(n), &KvStore::default()).unwrap();

    let mut handles = Vec::new();
    for round in 0..5u64 {
        // Each server batches a couple of writes: both commands queue at
        // the origin and ride one round payload together.
        for s in 0..n as u32 {
            handles.push(
                kv.submit(s, &put(format!("key-{s}-{round}"), format!("value-{round}"))).unwrap(),
            );
            if round % 2 == 0 {
                handles.push(kv.submit(s, &put("shared", format!("{s}:{round}"))).unwrap());
            }
        }
        kv.sync(TIMEOUT).unwrap();
    }

    // Every write acknowledged, typed.
    for handle in handles {
        assert_eq!(kv.wait(&handle, TIMEOUT).unwrap(), KvResponse::Ack);
    }

    // Strong consistency: identical state everywhere, including the
    // contended "shared" key — last agreed write wins identically.
    let reference = kv.query_local(0).unwrap().clone();
    for s in 0..n as u32 {
        assert_eq!(kv.query_local(s).unwrap(), &reference, "replica {s} diverged");
        assert_eq!(kv.replica(s).unwrap().applied_rounds(), 5);
    }
    // shared key: written by all servers in rounds 0, 2, 4; agreement
    // order is origin-ascending, so the last writer is server n−1 of the
    // last even round.
    assert_eq!(reference.get_local(b"shared"), Some(format!("{}:4", n - 1).as_bytes()));
    assert_eq!(reference.len(), n * 5 + 1);
}

#[test]
fn kv_store_survives_crash_consistently() {
    let n = 8usize;
    let cluster = Cluster::sim_with(
        gs_digraph(n, 3).unwrap(),
        SimOptions {
            network: NetworkModel::ib_verbs(),
            fd_delay: SimTime::from_us(50),
            ..SimOptions::default()
        },
    );
    let mut kv = Service::new(cluster, &KvStore::default()).unwrap();

    // Round 0: all write.
    for s in 0..n as u32 {
        kv.submit(s, &put(format!("k{s}"), "v0")).unwrap();
    }
    kv.sync(TIMEOUT).unwrap();

    // Server 7 crashes; the next round proceeds without it.
    kv.crash(7).unwrap();
    assert!(matches!(kv.submit(7, &put("dead", "x")), Err(ServiceError::OriginDown(7))));
    for s in 0..7u32 {
        kv.submit(s, &put(format!("k{s}"), "v1")).unwrap();
    }
    kv.sync(TIMEOUT).unwrap();

    let reference = kv.query_local(0).unwrap().clone();
    for s in 0..7u32 {
        assert_eq!(kv.query_local(s).unwrap(), &reference, "survivor {s} diverged");
    }
    // k7 was written in round 0 (before the crash) and survives; its
    // round-1 write never happened but k0..k6 were overwritten
    // identically.
    assert_eq!(reference.get_local(b"k7"), Some(&b"v0"[..]));
    assert_eq!(reference.get_local(b"k0"), Some(&b"v1"[..]));

    // Linearizable read rides a round of its own: agreement on the read
    // point, answered typed.
    let value =
        kv.query_linearizable(0, &KvCommand::Get { key: b"k3".to_vec().into() }, TIMEOUT).unwrap();
    assert_eq!(value, KvResponse::Value(Some(b"v1".to_vec().into())));
}

#[test]
fn snapshot_reconfigure_carries_state_to_joiners() {
    use allconcur_core::config::FdMode;
    use allconcur_core::membership::plan_reconfiguration;
    use allconcur_graph::ReliabilityModel;

    let n = 8usize;
    let mut kv = Service::new(ib_cluster(n), &KvStore::default()).unwrap();
    for s in 0..n as u32 {
        kv.submit(s, &put(format!("pre-{s}"), "agreed")).unwrap();
    }
    kv.sync(TIMEOUT).unwrap();

    // Crash one server, then admit two joiners on a fresh overlay. The
    // replicated state crosses the reconfiguration via snapshot.
    kv.crash(5).unwrap();
    let model = ReliabilityModel::paper_default();
    let survivors = kv.live_servers();
    let plan = plan_reconfiguration(&survivors, &[], 2, &model, 6.0, FdMode::Perfect);
    let n1 = plan.config.n();
    assert_eq!(n1, n + 1); // 7 survivors + 2 joiners
    kv.reconfigure((*plan.config.graph).clone(), TIMEOUT).unwrap();

    // Every member of the new configuration — including the joiners,
    // which never saw the original rounds — holds the full state.
    for s in 0..n1 as u32 {
        let state = kv.query_local(s).unwrap();
        assert_eq!(state.len(), n, "server {s} missing history after reconfigure");
        assert_eq!(state.get_local(b"pre-0"), Some(&b"agreed"[..]));
    }

    // The new configuration keeps agreeing, from round zero.
    let response = kv.execute(0, &put("post", "reconfig"), TIMEOUT).unwrap();
    assert_eq!(response, KvResponse::Ack);
    kv.sync(TIMEOUT).unwrap();
    for s in 0..n1 as u32 {
        assert_eq!(kv.query_local(s).unwrap().get_local(b"post"), Some(&b"reconfig"[..]));
    }
}

#[test]
fn resolved_responses_survive_shrinking_reconfiguration() {
    // A command submitted through a high-id origin resolves (agreed and
    // applied) but is not redeemed before a reconfiguration that shrinks
    // the membership below that origin id. The response must remain
    // redeemable afterwards — responses are never silently dropped.
    let n = 8usize;
    let mut kv = Service::new(ib_cluster(n), &KvStore::default()).unwrap();
    let handle = kv.submit(7, &put("late-claim", "kept")).unwrap();
    kv.sync(TIMEOUT).unwrap();

    kv.reconfigure(gs_digraph(6, 3).unwrap(), TIMEOUT).unwrap();
    assert_eq!(kv.n(), 6, "shrunk below the handle's origin id");

    let response = kv.wait(&handle, TIMEOUT).unwrap();
    assert_eq!(response, KvResponse::Ack, "pre-reconfigure response stays redeemable");

    // The shrunken deployment keeps agreeing.
    let response = kv.execute(0, &put("post-shrink", "ok"), TIMEOUT).unwrap();
    assert_eq!(response, KvResponse::Ack);
}
