//! End-to-end replica integrity: the divergence audit catches a
//! silently corrupted replica, quarantines it (typed
//! `ServiceError::Diverged`), heals it through snapshot catch-up, and
//! the deployment reconverges — plus recovery's refusal to trust a
//! write-ahead log with mid-log rot (it rebuilds the server from its
//! peers instead of trimming acknowledged history).
#![deny(deprecated)]

use allconcur::prelude::*;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(30);

fn put(key: impl Into<Bytes>, value: impl Into<Bytes>) -> KvCommand {
    KvCommand::Put { key: key.into(), value: value.into() }
}

fn service(n: usize) -> Service<KvStore> {
    Service::new(Cluster::sim(gs_digraph(n, 3).unwrap()), &KvStore::default()).unwrap()
}

/// Drive `rounds` agreed rounds, one command per round through `origin`.
fn drive(kv: &mut Service<KvStore>, origin: ServerId, label: &str, rounds: u64) {
    for i in 0..rounds {
        kv.execute(origin, &put(format!("{label}-{i}"), format!("v{i}")), TIMEOUT).unwrap();
    }
    kv.sync(TIMEOUT).unwrap();
}

/// Fault-free runs audit continuously and never flag anything: the
/// digest fold is pure bookkeeping with zero observable effect.
#[test]
fn fault_free_audit_is_silent() {
    let n = 6;
    let mut kv = service(n);
    kv.set_audit_interval(4);
    drive(&mut kv, 0, "clean", 13);
    let stats = kv.integrity_stats();
    assert!(stats.audits >= 3, "13 rounds at interval 4 must audit: {stats:?}");
    assert_eq!(stats.divergences, 0, "{stats:?}");
    assert_eq!(stats.quarantines, 0, "{stats:?}");
    for s in 0..n as ServerId {
        assert_eq!(kv.quarantined_at(s), None);
    }
    let reference = kv.query_local(0).unwrap().clone();
    for s in 1..n as ServerId {
        assert_eq!(kv.query_local(s).unwrap(), &reference, "replica {s}");
    }
}

/// A poisoned replica (state mutated outside agreement) is caught at
/// the next digest cross-check, quarantined with a typed error, healed
/// back in from a peer snapshot, and reconverges with the majority —
/// the poison never leaks into answers afterwards.
#[test]
fn poisoned_replica_is_quarantined_then_rejoins() {
    let n = 6;
    let victim: ServerId = 2;
    let mut kv = service(n);
    kv.set_audit_interval(4);

    drive(&mut kv, 0, "pre", 2);
    // Silent corruption: the victim applies a write no round carried.
    kv.poison_replica(victim, &put("poison", "stray")).unwrap();
    assert_eq!(
        kv.query_local(victim).unwrap().get_local(b"poison"),
        Some(&b"stray"[..]),
        "the corruption starts out silent"
    );

    // Drive rounds one delivery at a time until the audit boundary
    // exposes the divergence. (The quarantine is self-healing — the
    // victim's next delivery triggers the rejoin — so the window is
    // only observable between single `pump` steps.)
    let mut quarantined_round = None;
    'drive: for i in 0..8u64 {
        kv.submit(0, &put(format!("mid-{i}"), "v")).unwrap();
        kv.flush().unwrap();
        while kv.pump(TIMEOUT).unwrap() {
            if let Some(r) = kv.quarantined_at(victim) {
                quarantined_round = Some(r);
                break 'drive;
            }
        }
    }
    let audit_round = quarantined_round.expect("audit must catch the poisoned replica");
    let stats = kv.integrity_stats();
    assert!(stats.divergences >= 1, "{stats:?}");
    assert_eq!(stats.quarantines, 1, "{stats:?}");

    // Quarantine is typed and visible; healthy replicas are untouched.
    match kv.query_local(victim) {
        Err(ServiceError::Diverged { server, round }) => {
            assert_eq!(server, victim);
            assert_eq!(round, audit_round);
        }
        other => panic!("expected Diverged, got {other:?}"),
    }
    assert!(kv.query_local(0).unwrap().get_local(b"poison").is_none());
    // A quarantined replica is never the snapshot source.
    let snap = kv.snapshot().unwrap();
    let from_snap = KvStore::restore(&snap).unwrap();
    assert!(from_snap.get_local(b"poison").is_none(), "snapshot drew from the poisoned replica");

    // Healing: further rounds trigger the rejoin, and the deployment
    // reconverges — poison gone, agreed writes all present.
    drive(&mut kv, 0, "post", 6);
    assert_eq!(kv.quarantined_at(victim), None, "victim must rejoin");
    let stats = kv.integrity_stats();
    assert_eq!(stats.rejoins, 1, "{stats:?}");
    let reference = kv.query_local(0).unwrap().clone();
    let healed = kv.query_local(victim).unwrap();
    assert_eq!(healed, &reference, "healed replica must match the majority");
    assert!(healed.get_local(b"poison").is_none(), "poison must not survive the rejoin");
    assert!(healed.get_local(b"post-5").is_some(), "healed replica must keep applying");

    // And the audit stays green afterwards.
    drive(&mut kv, 0, "tail", 5);
    assert_eq!(kv.integrity_stats().quarantines, 1, "no re-quarantine after healing");
}

/// Interval zero disables the audit: the poison goes undetected (the
/// knob genuinely gates the mechanism).
#[test]
fn audit_interval_zero_disables_the_audit() {
    let mut kv = service(6);
    kv.set_audit_interval(0);
    drive(&mut kv, 0, "pre", 2);
    kv.poison_replica(1, &put("poison", "stray")).unwrap();
    drive(&mut kv, 0, "post", 10);
    assert_eq!(kv.quarantined_at(1), None);
    assert_eq!(kv.integrity_stats(), IntegrityStats::default());
}

/// Mid-log rot on one server's WAL: recovery refuses to trim the
/// acknowledged history (that would silently unacknowledge durable
/// rounds) and instead rebuilds the server from the reference peer's
/// chunked catch-up. Every acknowledged command survives on every
/// replica.
#[test]
fn recovery_rebuilds_rotted_server_from_peers() {
    let n = 6;
    let victim = 3;
    let mut kv = Service::with_durability(
        Cluster::sim(gs_digraph(n, 3).unwrap()),
        &KvStore::default(),
        DurabilityStore::memory(n),
        DurabilityConfig::deterministic(1),
    )
    .unwrap();
    for uid in 0..12u64 {
        kv.execute(0, &put(uid.to_le_bytes().to_vec(), "durable"), TIMEOUT).unwrap();
    }
    let mut store = kv.shutdown_into_store().unwrap().expect("durability was on");

    // Bit rot inside the victim's first log frame — an *acknowledged*
    // round, not a torn tail.
    {
        let mem = store.mem_disk_mut(victim).unwrap();
        let mut segments: Vec<String> = mem
            .list()
            .unwrap()
            .into_iter()
            .filter(|f| f.starts_with("wal-") && f.ends_with(".seg"))
            .collect();
        segments.sort();
        let first = segments.first().expect("victim has log segments").clone();
        assert!(mem.rot(&first, 21 * 8), "rot a payload bit of the first frame");
    }

    let (kv2, report) = Service::recover(
        Cluster::sim(gs_digraph(n, 3).unwrap()),
        &KvStore::default(),
        store,
        DurabilityConfig::deterministic(1),
    )
    .expect("recover despite one rotted log");

    assert_eq!(report.rotted.len(), 1, "{report:?}");
    assert_eq!(report.rotted[0].0, victim as ServerId, "{report:?}");
    assert!(
        report.snapshot_catchup.contains(&(victim as ServerId)),
        "rotted server must take the snapshot catch-up path: {report:?}"
    );
    assert_eq!(report.recovered_rounds, 12, "peers' logs carry the full history");
    // No acknowledged command lost, on any replica — including the
    // rebuilt one.
    for uid in 0..12u64 {
        let key = uid.to_le_bytes();
        for s in 0..n as ServerId {
            assert_eq!(
                kv2.query_local(s).unwrap().get_local(&key),
                Some(&b"durable"[..]),
                "uid {uid} missing on replica {s}"
            );
        }
    }
}
