//! Quantitative checks of the paper's headline claims, at test scale.
//! The full regenerations live in `allconcur-bench`'s binaries; these
//! assertions pin the *shapes* — who wins, by roughly what factor — so a
//! regression that silently breaks a figure fails CI.

use allconcur_baselines::allgather::{simulate_allgather_eff, AllgatherAlgorithm};
use allconcur_baselines::leader::{LeaderCluster, LeaderConfig};
use allconcur_bench::workloads::{
    paper_overlay, run_throughput, single_request_round, ThroughputWorkload,
};
use allconcur_graph::gs::gs_digraph;
use allconcur_graph::moore::moore_diameter_lower_bound;
use allconcur_graph::{choose_gs_degree, ReliabilityModel};
use allconcur_sim::{logp, NetworkModel, SimCluster, SimTime};

/// Table 3, full row check: degree and diameter for every size.
#[test]
fn table3_reproduces_exactly() {
    let model = ReliabilityModel::paper_default();
    let rows: &[(usize, usize, usize, usize)] = &[
        // (n, d, D, D_L)
        (6, 3, 2, 2),
        (8, 3, 2, 2),
        (11, 3, 3, 2),
        (16, 4, 2, 2),
        (22, 4, 3, 3),
        (32, 4, 3, 3),
        (45, 4, 4, 3),
        (64, 5, 4, 3),
        (90, 5, 3, 3),
        (128, 5, 4, 3),
        (256, 7, 4, 3),
    ];
    for &(n, d, dd, dl) in rows {
        assert_eq!(choose_gs_degree(n, &model, 6.0), Some(d), "degree for n={n}");
        let g = gs_digraph(n, d).unwrap();
        assert_eq!(g.diameter(), Some(dd), "diameter of GS({n},{d})");
        assert_eq!(moore_diameter_lower_bound(n, d), dl, "Moore bound for n={n}");
    }
}

/// §1.1/§5: "AllConcur can handle up to 135 million (8-byte) requests
/// per second" — our calibrated simulation must land within ±25%.
#[test]
fn headline_throughput_ballpark() {
    let mut cluster =
        SimCluster::builder(paper_overlay(8)).network(NetworkModel::tcp_cluster()).build();
    let out = run_throughput(
        &mut cluster,
        &ThroughputWorkload { batch_factor: 1 << 15, request_size: 8, rounds: 3 },
    )
    .unwrap();
    let mreqs = out.agreement_gbps * 1e9 / 8.0 / 8.0 / 1e6;
    assert!(
        (100.0..170.0).contains(&mreqs),
        "8-byte request rate {mreqs:.0}M/s out of the paper's 135M ballpark"
    );
}

/// §5: "17× higher throughput than Libpaxos".
#[test]
fn leader_based_factor_holds() {
    let n = 8;
    let model = NetworkModel::tcp_cluster();
    let batch = 1usize << 14;
    let mut cluster = SimCluster::builder(paper_overlay(n)).network(model).build();
    let ac = run_throughput(
        &mut cluster,
        &ThroughputWorkload { batch_factor: batch, request_size: 8, rounds: 3 },
    )
    .unwrap()
    .agreement_gbps;
    let mut leader = LeaderCluster::new(LeaderConfig::paper_default(n), model);
    let lo = leader.run_round(batch * 8);
    let leader_gbps = (n * batch * 8) as f64 * 8.0 / lo.round_time.as_secs_f64() / 1e9;
    let factor = ac / leader_gbps;
    assert!(
        factor >= 10.0,
        "AllConcur must dominate the leader-based baseline by ≥10× (paper: 17×), got {factor:.1}×"
    );
}

/// §5: fault tolerance costs moderate overhead vs unreliable allgather —
/// the paper's average is 58%; require the same regime (allgather faster,
/// but by less than 2.5×).
#[test]
fn fault_tolerance_overhead_regime() {
    let n = 8;
    let model = NetworkModel::tcp_cluster();
    let batch = 1usize << 14;
    let mut cluster = SimCluster::builder(paper_overlay(n)).network(model).build();
    let ac = run_throughput(
        &mut cluster,
        &ThroughputWorkload { batch_factor: batch, request_size: 8, rounds: 3 },
    )
    .unwrap()
    .agreement_gbps;
    let ag = simulate_allgather_eff(n, batch * 8, AllgatherAlgorithm::Ring, &model, 0.45);
    let ag_gbps = (n * batch * 8) as f64 * 8.0 / ag.round_time.as_secs_f64() / 1e9;
    let overhead = ag_gbps / ac - 1.0;
    assert!(
        (0.0..1.5).contains(&overhead),
        "overhead {:.0}% outside the paper's regime (58% avg)",
        overhead * 100.0
    );
}

/// §1.1: "the agreement among 64 servers, each generating 32,000 updates
/// per second, takes less than 0.75 ms" (IBV).
#[test]
fn sixty_four_servers_under_750us() {
    let mut cluster =
        SimCluster::builder(paper_overlay(64)).network(NetworkModel::ib_verbs()).build();
    // 32k updates/s × ~200µs rounds ≈ 6 requests per round per server.
    let payloads: Vec<bytes::Bytes> =
        (0..64).map(|_| allconcur_core::batch::encode_fixed(6, 64, 1)).collect();
    let out = cluster.run_round(&payloads).unwrap();
    assert!(
        out.agreement_latency() < SimTime::from_us(750),
        "64-server agreement {} must be < 0.75ms",
        out.agreement_latency()
    );
}

/// Fig. 6: the LogP models bracket the measurement, and TCP ≈ 3× IBV.
#[test]
fn fig6_model_brackets_and_tcp_ratio() {
    let n = 32;
    let graph = paper_overlay(n);
    let d = graph.degree();
    let diameter = graph.diameter().unwrap();

    let mut ibv = SimCluster::builder(graph.clone()).network(NetworkModel::ib_verbs()).build();
    let t_ibv = single_request_round(&mut ibv, 0, 64).unwrap().agreement_latency();
    let mut tcp = SimCluster::builder(graph).network(NetworkModel::tcp_cluster()).build();
    let t_tcp = single_request_round(&mut tcp, 0, 64).unwrap().agreement_latency();

    let ratio = t_tcp.as_ns() as f64 / t_ibv.as_ns() as f64;
    assert!((2.0..8.0).contains(&ratio), "TCP/IBV ratio {ratio:.1} out of range");

    let model = NetworkModel::ib_verbs();
    let depth = logp::depth_bound(diameter, d, &model);
    let work = logp::work_bound(n, d, &model);
    assert!(t_ibv >= SimTime::from_ns(depth.as_ns().min(work.as_ns()) / 4));
    assert!(t_ibv <= SimTime::from_ns(depth.as_ns().max(work.as_ns()) * 3));
}

/// §4.2.2: the depth-bound probability example.
#[test]
fn depth_probability_example() {
    let mttf = 2.0 * 365.0 * 24.0 * 3600.0;
    let p = logp::prob_rounds_within_fault_diameter(256, 7, 1.8e-6, mttf, 1_000_000);
    assert!(p > 0.9999);
}

/// §4.5: total message count per round is n²·d for AllConcur vs n(n−1)
/// for a leader deployment (before replication).
#[test]
fn message_count_accounting() {
    let n = 8;
    let d = 3;
    let mut cluster =
        SimCluster::builder(gs_digraph(n, d).unwrap()).network(NetworkModel::tcp_cluster()).build();
    let payloads: Vec<bytes::Bytes> = (0..n).map(|_| bytes::Bytes::from(vec![0u8; 8])).collect();
    let out = cluster.run_round(&payloads).unwrap();
    assert_eq!(out.messages_sent as usize, n * n * d, "n²·d BCAST copies per round");
}
