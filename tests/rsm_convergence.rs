//! Property: replicas applying the *same agreed command sequence* reach
//! identical snapshots and emit identical typed responses, no matter
//! how the sequence is split into rounds/batches — and a replica that
//! crashes mid-scenario and catches up from a peer's snapshot (instead
//! of replaying history) converges to the same state.
//!
//! This is the determinism contract of the typed `StateMachine`/`Codec`
//! redesign checked in isolation: no transport, just `Replica` fed the
//! command stream through adversarially different batching schedules.
#![deny(deprecated)]

use allconcur::prelude::*;
use allconcur_core::batch::Batcher;
use bytes::Bytes;
use proptest::prelude::*;

const N_REPLICAS: usize = 4;
const KEYS: usize = 6;

/// Tiny deterministic generator, so scenarios derive entirely from the
/// proptest-chosen seed (and print as one reproducible integer).
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        // 0 is a fixed point of xorshift; nudge it.
        if self.0 == 0 {
            self.0 = 0x9e37_79b9_7f4a_7c15;
        }
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

fn random_commands(seed: u64, len: usize) -> Vec<KvCommand> {
    let mut rng = XorShift(seed);
    (0..len)
        .map(|_| {
            let key: bytes::Bytes = format!("k{}", rng.below(KEYS as u64)).into();
            match rng.below(3) {
                0 => KvCommand::Put { key, value: rng.next().to_le_bytes().to_vec().into() },
                1 => KvCommand::Delete { key },
                _ => KvCommand::Get { key },
            }
        })
        .collect()
}

/// Apply `commands` to `replica` under a seed-specific batching
/// schedule: each round carries a random 1..=4-command batch. Returns
/// the typed response stream (round boundaries must not affect it).
fn apply_chunked(
    replica: &mut Replica<KvStore>,
    commands: &[KvCommand],
    schedule_seed: u64,
) -> Vec<KvResponse> {
    let mut rng = XorShift(schedule_seed);
    let mut responses = Vec::new();
    let mut next_round = match replica.last_round() {
        Some(r) => r + 1,
        None => 0,
    };
    let mut rest = commands;
    while !rest.is_empty() {
        let take = (1 + rng.below(4) as usize).min(rest.len());
        let (chunk, remaining) = rest.split_at(take);
        rest = remaining;
        let mut batcher = Batcher::new();
        for cmd in chunk {
            batcher.push(KvCodec.encode(cmd));
        }
        let payload = batcher.take_batch();
        let outputs = replica
            .apply_round(next_round, &[(0, payload)], true)
            .expect("agreed commands apply cleanly");
        next_round += 1;
        responses.extend(outputs.into_iter().map(|(_, response)| response));
    }
    responses
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// N replicas, same command sequence, each with its own random
    /// batching split; one replica crashes mid-scenario and rejoins via
    /// snapshot. All converge to identical snapshots, and the typed
    /// response streams are split-invariant.
    #[test]
    fn replicas_converge_under_any_batching_split(
        seed in 0u64..u64::MAX,
        len in 1usize..48,
        crash_frac in 0usize..100,
        victim in 0usize..N_REPLICAS,
    ) {
        let commands = random_commands(seed, len);
        let crash_at = crash_frac * len / 100;

        // Reference: one command per round, no batching — also the
        // snapshot source for the crashed replica's catch-up.
        let mut reference = Replica::new(KvStore::default());
        let mut reference_responses = Vec::new();
        let mut snapshot_at_crash: Option<Bytes> = None;
        for (i, cmd) in commands.iter().enumerate() {
            if i == crash_at {
                snapshot_at_crash = Some(reference.snapshot());
            }
            let outputs = reference
                .apply_round(i as u64, &[(0, KvCodec.encode(cmd))], false)
                .expect("reference applies");
            reference_responses.extend(outputs.into_iter().map(|(_, r)| r));
        }
        let snapshot_at_crash = snapshot_at_crash.unwrap_or_else(|| reference.snapshot());

        for r in 0..N_REPLICAS {
            let schedule = seed.wrapping_add(1 + r as u64);
            if r == victim {
                // Crash after `crash_at` commands, drop all local state,
                // catch up from the reference's snapshot (no replay),
                // then continue with the remaining commands.
                let mut replica = Replica::new(KvStore::default());
                apply_chunked(&mut replica, &commands[..crash_at], schedule);
                let mut rejoined: Replica<KvStore> =
                    Replica::from_snapshot(&snapshot_at_crash).expect("snapshot restores");
                let tail = apply_chunked(&mut rejoined, &commands[crash_at..], schedule);
                prop_assert_eq!(&tail[..], &reference_responses[crash_at..],
                    "rejoined replica {} response tail diverged", r);
                prop_assert_eq!(rejoined.snapshot(), reference.snapshot(),
                    "rejoined replica {} snapshot diverged", r);
                prop_assert_eq!(rejoined.query(), reference.query());
            } else {
                let mut replica = Replica::new(KvStore::default());
                let responses = apply_chunked(&mut replica, &commands, schedule);
                prop_assert_eq!(&responses, &reference_responses,
                    "replica {} responses depend on batching split", r);
                prop_assert_eq!(replica.snapshot(), reference.snapshot(),
                    "replica {} snapshot diverged", r);
                prop_assert_eq!(replica.applied_commands(), len as u64);
            }
        }
    }
}
