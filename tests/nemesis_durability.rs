//! Durability nemesis suite: whole-cluster power losses with torn tail
//! writes and disk-slow fsync spikes, recovered from the write-ahead
//! logs alone.
//!
//! Ten pinned kill-all-and-recover seeds run on the discrete-event
//! simulator. Every scenario runs the full always-on property checker
//! (validity, uniform agreement, integrity, total order, snapshot
//! convergence) on the pre-crash epoch, then — after recovery — asserts
//! the durability property: **every command acknowledged before the
//! power loss is present in the recovered state**, and all recovered
//! replicas converge byte-identically. Torn writes may only roll back
//! the *unacknowledged* unsynced tail.
//!
//! **Reproducing a failure:** execution is fully deterministic per
//! seed; replay with `Scenario::generate_durability(seed).run_sim()`.
//! In CI, failing runs dump every server's WAL segments under
//! `$NEMESIS_WAL_DUMP/seed-<seed>/server-<id>/` for artifact upload.

use allconcur_nemesis::{FaultClass, Scenario};

/// The pinned CI seeds — two or three per fsync window, one or two
/// power losses each (the plan shape is seed-derived).
const SEEDS: [u64; 10] = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9];

#[test]
fn pinned_kill_all_and_recover_seeds() {
    for seed in SEEDS {
        let scenario = Scenario::generate_durability(seed);
        assert_eq!(scenario.class, FaultClass::KillAllRecover);
        let report = scenario.run_sim().unwrap_or_else(|e| {
            panic!(
                "{scenario} FAILED: {e}\n\
                 replay deterministically with `Scenario::generate_durability({seed}).run_sim()`"
            )
        });
        assert!(report.recoveries >= 1, "{scenario} never exercised a kill-all recovery");
        assert!(report.rounds > 0, "{scenario} delivered no rounds");
        assert!(report.resolved > 0, "{scenario} resolved no commands");
        assert_eq!(
            report.epochs,
            report.recoveries + 1,
            "{scenario}: every epoch boundary should be a recovery"
        );
    }
}

#[test]
fn durability_replays_byte_for_byte() {
    // The reproducibility contract behind the printed-seed workflow.
    for seed in [2u64, 7] {
        let a = Scenario::generate_durability(seed);
        let b = Scenario::generate_durability(seed);
        assert_eq!(a.plan, b.plan, "seed {seed} plans diverged");
        assert_eq!(a.run_sim().unwrap(), b.run_sim().unwrap(), "seed {seed} executions diverged");
    }
}
