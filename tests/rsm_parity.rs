//! Cross-backend parity at the *typed* layer: one scripted command
//! scenario, run once over the discrete-event simulator and once over
//! real TCP sockets — through the same `Service` code — must produce
//! identical typed responses for every command and identical final
//! snapshots at every surviving server, including across a mid-script
//! crash.
//!
//! This lifts `tests/cluster_parity.rs` (byte-identical deliveries) one
//! layer up: not only do both backends agree on the bytes, the typed
//! command → round → apply → response pipeline built on top of them is
//! deterministic end to end.
#![deny(deprecated)]

use allconcur::prelude::*;
use allconcur_graph::gs::gs_digraph;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(20);

fn put(key: impl Into<Bytes>, value: impl Into<Bytes>) -> KvCommand {
    KvCommand::Put { key: key.into(), value: value.into() }
}

/// Every command's typed response, tagged with its correlation key, in
/// script order.
type ScriptResponses = Vec<(ServerId, u64, KvResponse)>;
/// Every surviving server's final snapshot.
type ScriptSnapshots = Vec<(ServerId, Vec<u8>)>;

/// The scripted scenario: typed writes from every server (two per origin
/// in the first wave, exercising batching), a crash of server 6, then a
/// second wave from the survivors plus linearizable reads.
fn run_script(cluster: Cluster) -> (ScriptResponses, ScriptSnapshots) {
    let backend = cluster.backend();
    let mut kv = Service::new(cluster, &KvStore::default()).unwrap();
    let n = kv.n();
    assert_eq!(n, 8);
    let mut handles = Vec::new();

    // Wave 1: two commands per origin — both ride one round payload.
    for s in 0..n as u32 {
        handles.push(kv.submit(s, &put(format!("a-{s}"), format!("v{s}"))).unwrap());
        handles.push(kv.submit(s, &put("contended", format!("from-{s}"))).unwrap());
    }
    kv.sync(TIMEOUT).unwrap_or_else(|e| panic!("[{backend}] wave 1: {e}"));

    // Mid-script crash. GS(8,3) has vertex-connectivity 3, so the
    // remaining 7 servers keep both safety and liveness.
    kv.crash(6).unwrap();

    // Wave 2: survivors overwrite and delete; one linearizable read
    // rides a round of its own.
    for s in 0..6u32 {
        handles.push(kv.submit(s, &put(format!("a-{s}"), "v2")).unwrap());
    }
    handles.push(kv.submit(7, &KvCommand::Delete { key: b"a-3".to_vec().into() }).unwrap());
    handles.push(kv.submit(0, &KvCommand::Get { key: b"contended".to_vec().into() }).unwrap());
    kv.sync(TIMEOUT).unwrap_or_else(|e| panic!("[{backend}] wave 2: {e}"));

    let responses: Vec<(ServerId, u64, KvResponse)> = handles
        .iter()
        .map(|h| {
            let response =
                kv.wait(h, TIMEOUT).unwrap_or_else(|e| panic!("[{backend}] command {h:?}: {e}"));
            (h.origin(), h.seq(), response)
        })
        .collect();

    let snapshots: Vec<(ServerId, Vec<u8>)> = kv
        .live_servers()
        .into_iter()
        .map(|s| (s, kv.replica(s).unwrap().snapshot().as_ref().to_vec()))
        .collect();
    kv.shutdown().unwrap();
    (responses, snapshots)
}

#[test]
fn sim_and_tcp_produce_identical_typed_states_and_responses() {
    let graph = gs_digraph(8, 3).unwrap();

    let (sim_responses, sim_snapshots) = run_script(Cluster::sim(graph.clone()));
    let (tcp_responses, tcp_snapshots) = run_script(Cluster::tcp(graph).expect("loopback"));

    // Every command resolved to the same typed response on both
    // backends, under the same correlation key.
    assert_eq!(sim_responses.len(), 8 * 2 + 6 + 2);
    assert_eq!(sim_responses, tcp_responses, "typed responses differ between backends");

    // The linearizable read observed the agreed order: origin-ascending
    // within the round, so the last write to "contended" is from-7.
    let (_, _, read) = sim_responses.last().unwrap();
    assert_eq!(read, &KvResponse::Value(Some(b"from-7".to_vec().into())));

    // Identical surviving servers, each with an identical snapshot —
    // and all snapshots within one backend agree too.
    assert_eq!(sim_snapshots.len(), 7);
    assert_eq!(sim_snapshots, tcp_snapshots, "final snapshots differ between backends");
    let reference = &sim_snapshots[0].1;
    for (s, snap) in &sim_snapshots {
        assert_eq!(snap, reference, "server {s} snapshot diverged");
    }

    // Spot-check the final state through a restored machine, so parity
    // cannot pass vacuously.
    let state = KvStore::restore(reference).unwrap();
    assert_eq!(state.get_local(b"a-0"), Some(&b"v2"[..]));
    assert_eq!(state.get_local(b"a-3"), None, "delete must have applied");
    assert_eq!(state.get_local(b"a-6"), Some(&b"v6"[..]), "pre-crash write survives");
    assert_eq!(state.get_local(b"contended"), Some(&b"from-7"[..]));
}
