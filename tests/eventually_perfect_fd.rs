//! The eventually-perfect failure detector mode (§3.3.2): termination
//! goes through the FWD/BWD surviving-partition protocol, so safety holds
//! even when suspicions are wrong.

use allconcur_core::config::FdMode;
use allconcur_graph::binomial::binomial_graph;
use allconcur_graph::gs::gs_digraph;
use allconcur_sim::failure::FailurePlan;
use allconcur_sim::network::NetworkModel;
use allconcur_sim::{SimCluster, SimTime};
use bytes::Bytes;

fn payloads(n: usize) -> Vec<Bytes> {
    (0..n).map(|i| Bytes::from(vec![i as u8; 32])).collect()
}

#[test]
fn ep_mode_failure_free_round_delivers_everywhere() {
    let n = 8;
    let mut cluster = SimCluster::builder(gs_digraph(n, 3).unwrap())
        .network(NetworkModel::tcp_cluster())
        .fd_mode(FdMode::EventuallyPerfect)
        .build();
    let out = cluster.run_round(&payloads(n)).unwrap();
    assert_eq!(out.delivered.len(), n);
    let reference = &out.delivered[&0];
    assert_eq!(reference.len(), n);
    for seq in out.delivered.values() {
        assert_eq!(seq, reference);
    }
}

#[test]
fn ep_mode_costs_extra_fwd_bwd_traffic() {
    // The majority gate costs one extra R-broadcast in each direction:
    // EP rounds must ship strictly more messages than P rounds.
    let count = |mode: FdMode| {
        let mut cluster = SimCluster::builder(gs_digraph(8, 3).unwrap())
            .network(NetworkModel::tcp_cluster())
            .fd_mode(mode)
            .build();
        cluster.run_round(&payloads(8)).unwrap().messages_sent
    };
    let p = count(FdMode::Perfect);
    let ep = count(FdMode::EventuallyPerfect);
    assert!(ep > p + 8, "FWD/BWD flooding must show up: P={p}, EP={ep}");
}

#[test]
fn ep_mode_survives_false_suspicion() {
    // Server 3 falsely suspects its predecessor early in the round. The
    // suspected server is alive and its message floods via other paths;
    // everyone (including both parties) must deliver the same full set.
    let n = 9;
    let graph = binomial_graph(n);
    let suspect = graph.predecessors(3)[0];
    let mut cluster = SimCluster::builder(graph)
        .network(NetworkModel::tcp_cluster())
        .fd_mode(FdMode::EventuallyPerfect)
        .build();
    cluster.schedule_suspicion(SimTime::from_us(5), 3, suspect);
    let out = cluster.run_round(&payloads(n)).unwrap();
    assert_eq!(out.delivered.len(), n, "false suspicion must not kill anyone");
    let reference = &out.delivered[&0];
    assert_eq!(reference.len(), n, "the falsely suspected server's message survives");
    for (s, seq) in &out.delivered {
        assert_eq!(seq, reference, "server {s} diverged after false suspicion");
    }
}

#[test]
fn ep_mode_handles_real_crash() {
    let n = 9;
    let plan = FailurePlan::none().fail_at(8, SimTime::from_ns(1));
    let mut cluster = SimCluster::builder(binomial_graph(n))
        .network(NetworkModel::tcp_cluster())
        .fd_mode(FdMode::EventuallyPerfect)
        .fd_detection_delay(SimTime::from_us(200))
        .failures(plan)
        .build();
    let out = cluster.run_round(&payloads(n)).unwrap();
    assert_eq!(out.delivered.len(), n - 1);
    let reference = &out.delivered[&0];
    let origins: Vec<u32> = reference.iter().map(|&(o, _)| o).collect();
    assert_eq!(origins, (0..8).collect::<Vec<u32>>());
    for seq in out.delivered.values() {
        assert_eq!(seq, reference);
    }
}

#[test]
fn ep_mode_multi_round() {
    let n = 8;
    let mut cluster = SimCluster::builder(gs_digraph(n, 3).unwrap())
        .network(NetworkModel::tcp_cluster())
        .fd_mode(FdMode::EventuallyPerfect)
        .build();
    for round in 0..4u64 {
        let out = cluster.run_round(&payloads(n)).unwrap();
        assert_eq!(out.round, round);
        assert_eq!(out.delivered.len(), n);
    }
}

#[test]
fn ep_false_suspicion_with_simultaneous_crash() {
    // Stress: a real crash and a false suspicion in the same round.
    let n = 9;
    let graph = binomial_graph(n);
    let false_suspect = graph.predecessors(2)[1];
    let plan = FailurePlan::none().fail_at(8, SimTime::from_ns(5));
    let mut cluster = SimCluster::builder(graph)
        .network(NetworkModel::tcp_cluster())
        .fd_mode(FdMode::EventuallyPerfect)
        .fd_detection_delay(SimTime::from_us(150))
        .failures(plan)
        .build();
    cluster.schedule_suspicion(SimTime::from_us(10), 2, false_suspect);
    let out = cluster.run_round(&payloads(n)).unwrap();
    assert_eq!(out.delivered.len(), n - 1);
    let reference = &out.delivered[&0];
    for seq in out.delivered.values() {
        assert_eq!(seq, reference);
    }
    // The falsely suspected server's message must still be in the set
    // (it is alive and flooding); only the crashed server's is missing.
    let origins: Vec<u32> = reference.iter().map(|&(o, _)| o).collect();
    assert!(origins.contains(&false_suspect));
    assert!(!origins.contains(&8));
}
