//! Early termination (§2.3) — the paper's core mechanism, verified
//! end-to-end through the simulator:
//!
//! * failure-free rounds terminate in ≈ D communication steps, never
//!   waiting for any failure-detector timeout;
//! * the §2.3 walkthrough (p0 dies after sending m0 to exactly one
//!   successor, which then also dies) still reaches agreement;
//! * termination beats the worst-case `f + D_f(G, f)` bound whenever the
//!   failure evidence arrives early (the whole point of tracking
//!   digraphs).

use allconcur_graph::binomial::binomial_graph;
use allconcur_graph::gs::gs_digraph;
use allconcur_sim::failure::FailurePlan;
use allconcur_sim::logp;
use allconcur_sim::network::NetworkModel;
use allconcur_sim::{SimCluster, SimTime};
use bytes::Bytes;

fn payloads(n: usize) -> Vec<Bytes> {
    (0..n).map(|i| Bytes::from(vec![i as u8; 64])).collect()
}

#[test]
fn failure_free_round_never_waits_for_fd() {
    // Give the FD an absurdly long timeout: if the protocol consulted it
    // on the happy path, the round would take half a minute.
    let mut cluster = SimCluster::builder(gs_digraph(22, 4).unwrap())
        .network(NetworkModel::tcp_cluster())
        .fd_detection_delay(SimTime::from_secs(30))
        .build();
    let out = cluster.run_round(&payloads(22)).unwrap();
    assert!(
        out.agreement_latency() < SimTime::from_ms(5),
        "happy path must not involve the FD: {}",
        out.agreement_latency()
    );
}

#[test]
fn latency_tracks_logp_models_failure_free() {
    // The measured latency must sit between the depth model (optimistic
    // pipeline) and a small multiple of the work model (§4's envelopes,
    // Fig. 6's "models are good indicators").
    for &(n, d) in &[(8usize, 3usize), (16, 4), (32, 4), (64, 5)] {
        let graph = gs_digraph(n, d).unwrap();
        let diameter = graph.diameter().unwrap();
        let model = NetworkModel::ib_verbs();
        let mut cluster = SimCluster::builder(graph).network(model).build();
        let out = cluster.run_round(&payloads(n)).unwrap();
        let measured = out.agreement_latency();
        let depth = logp::depth_bound(diameter, d, &model);
        let work = logp::work_bound(n, d, &model);
        let upper = SimTime::from_ns(3 * depth.as_ns().max(work.as_ns()));
        assert!(measured <= upper, "n={n}: measured {measured} above 3× model envelope {upper}");
        assert!(
            measured.as_ns() * 6 >= depth.as_ns().min(work.as_ns()),
            "n={n}: measured {measured} implausibly below the models"
        );
    }
}

#[test]
fn paper_section_23_walkthrough_end_to_end() {
    // The §2.3 scenario on the 9-server binomial graph: p0 fails after
    // sending m0 only to its first successor p1; p1 relays m0 but then
    // fails too. Everyone else must still deliver — *with* m0, because
    // p1 relayed it before dying.
    let n = 9;
    let graph = binomial_graph(n);
    let plan = FailurePlan::none()
        .fail_after_sends(0, 1) // p0: exactly one send
        .fail_after_sends(1, 14); // p1: enough sends to relay m0 + own msg, then dies
    let mut cluster = SimCluster::builder(graph)
        .network(NetworkModel::tcp_cluster())
        .fd_detection_delay(SimTime::from_us(200))
        .failures(plan)
        .build();
    let out = cluster.run_round(&payloads(n)).unwrap();
    assert_eq!(out.delivered.len(), 7, "p0 and p1 are gone");
    let reference = &out.delivered[&2];
    for (s, seq) in &out.delivered {
        assert_eq!(seq, reference, "server {s} diverged");
    }
    let origins: Vec<u32> = reference.iter().map(|&(o, _)| o).collect();
    assert!(origins.contains(&0), "m0 was relayed by p1 before p1 died: {origins:?}");
}

#[test]
fn message_never_sent_is_consistently_excluded() {
    // The complementary case: p0 dies *before* sending anything. No one
    // can deliver m0; all survivors must agree on its absence.
    let n = 9;
    let plan = FailurePlan::none().fail_at(0, SimTime::from_ns(1));
    let mut cluster = SimCluster::builder(binomial_graph(n))
        .network(NetworkModel::tcp_cluster())
        .fd_detection_delay(SimTime::from_us(100))
        .failures(plan)
        .build();
    let out = cluster.run_round(&payloads(n)).unwrap();
    assert_eq!(out.delivered.len(), 8);
    for (s, seq) in &out.delivered {
        let origins: Vec<u32> = seq.iter().map(|&(o, _)| o).collect();
        assert_eq!(origins, (1..9).collect::<Vec<u32>>(), "server {s}");
    }
}

#[test]
fn early_termination_beats_worst_case_bound() {
    // With one pre-round crash, the worst-case synchronous bound is
    // (f + D_f) rounds of message time *plus* the detection delay for
    // every possible failure — but early termination needs only the
    // actual failure's evidence. Measure: the round must complete in
    // roughly (FD delay + a few network sweeps), far under a
    // conservatively provisioned worst-case timeout of f + D_f sweeps of
    // the FD period.
    let n = 22;
    let graph = gs_digraph(n, 4).unwrap();
    let fd_delay = SimTime::from_ms(2);
    let plan = FailurePlan::none().fail_at(21, SimTime::from_ns(1));
    let mut cluster = SimCluster::builder(graph)
        .network(NetworkModel::tcp_cluster())
        .fd_detection_delay(fd_delay)
        .failures(plan)
        .build();
    let out = cluster.run_round(&payloads(n)).unwrap();
    let worst_case_provisioning = SimTime::from_ns(fd_delay.as_ns() * 4); // f+D_f ≥ 4 windows
    assert!(
        out.agreement_latency() < worst_case_provisioning,
        "early termination: {} should beat the {} worst-case provisioning",
        out.agreement_latency(),
        worst_case_provisioning
    );
    // And the latency is dominated by exactly one FD window.
    assert!(out.agreement_latency() >= fd_delay);
    assert!(out.agreement_latency() < fd_delay + SimTime::from_ms(4));
}

#[test]
fn multiple_cascading_failures_within_connectivity() {
    // GS(16,4): k = 4, tolerate 3. Kill three servers at staggered times
    // inside one round.
    let n = 16;
    let graph = gs_digraph(n, 4).unwrap();
    let plan = FailurePlan::none()
        .fail_at(13, SimTime::from_ns(10))
        .fail_at(14, SimTime::from_us(40))
        .fail_at(15, SimTime::from_us(80));
    let mut cluster = SimCluster::builder(graph)
        .network(NetworkModel::tcp_cluster())
        .fd_detection_delay(SimTime::from_us(150))
        .failures(plan)
        .build();
    let out = cluster.run_round(&payloads(n)).unwrap();
    assert_eq!(out.delivered.len(), 13);
    let reference = &out.delivered[&0];
    for seq in out.delivered.values() {
        assert_eq!(seq, reference);
    }
}

#[test]
fn crash_round_latency_tracks_detection_delay_linearly() {
    // Early termination makes a crashy round's latency ≈ Δ_to + c, with
    // c the constant dissemination tail — NOT a multiple of Δ_to as the
    // worst-case (f + D_f)-window provisioning would be. Sweep Δ_to and
    // check the measured latencies differ by exactly the Δ_to deltas
    // (within one dissemination sweep).
    let n = 16;
    let run = |delay: SimTime| {
        let plan = FailurePlan::none().fail_at(15, SimTime::from_ns(1));
        let mut cluster = SimCluster::builder(gs_digraph(n, 4).unwrap())
            .network(NetworkModel::tcp_cluster())
            .fd_detection_delay(delay)
            .failures(plan)
            .build();
        cluster.run_round(&payloads(n)).unwrap().agreement_latency()
    };
    let t1 = run(SimTime::from_ms(1));
    let t4 = run(SimTime::from_ms(4));
    let t16 = run(SimTime::from_ms(16));
    let slack = SimTime::from_ms(1); // one dissemination sweep of tolerance
    let close = |a: SimTime, b: SimTime| a.saturating_sub(b).max(b.saturating_sub(a)) < slack;
    assert!(close(t4 - t1, SimTime::from_ms(3)), "Δ latency {} should be ≈ Δ timeout 3ms", t4 - t1);
    assert!(
        close(t16 - t4, SimTime::from_ms(12)),
        "Δ latency {} should be ≈ Δ timeout 12ms",
        t16 - t4
    );
}
