//! Property-based verification of the four atomic-broadcast properties
//! (§2.1–2.2) under randomized overlays, delays, and failure schedules:
//!
//! * **Validity** — a non-faulty server's own message is delivered;
//! * **Agreement** — all non-faulty servers deliver the same set;
//! * **Integrity** — each message delivered at most once, and only if
//!   A-broadcast by its origin;
//! * **Total order** — identical delivery sequences everywhere.
//!
//! The schedules randomize network jitter (message orderings) and crash
//! times (including mid-broadcast partial sends), staying within the
//! liveness bound `f < k(G)`.

use allconcur_graph::binomial::binomial_graph;
use allconcur_graph::connectivity::vertex_connectivity;
use allconcur_graph::gs::gs_digraph;
use allconcur_graph::standard::{complete_digraph, random_regular_digraph};
use allconcur_graph::Digraph;
use allconcur_sim::failure::FailurePlan;
use allconcur_sim::network::{Jitter, NetworkModel};
use allconcur_sim::{SimCluster, SimTime};
use bytes::Bytes;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Overlay families under test.
#[derive(Debug, Clone, Copy)]
enum Topology {
    Gs,
    Binomial,
    Complete,
    RandomRegular,
}

fn build(topology: Topology, n: usize, seed: u64) -> Digraph {
    match topology {
        Topology::Gs => gs_digraph(n.max(6), 3).expect("n >= 2d"),
        Topology::Binomial => binomial_graph(n),
        Topology::Complete => complete_digraph(n),
        Topology::RandomRegular => {
            let mut rng = StdRng::seed_from_u64(seed);
            random_regular_digraph(n, 3.min(n - 1), &mut rng)
        }
    }
}

fn topology_strategy() -> impl Strategy<Value = Topology> {
    prop_oneof![
        Just(Topology::Gs),
        Just(Topology::Binomial),
        Just(Topology::Complete),
        Just(Topology::RandomRegular),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Failure-free rounds under random jitter: all four properties.
    #[test]
    fn properties_hold_without_failures(
        topology in topology_strategy(),
        n in 6usize..14,
        seed in 0u64..5000,
        jitter_ns in 0u64..20_000,
    ) {
        let graph = build(topology, n, seed);
        prop_assume!(graph.is_strongly_connected());
        let n = graph.order();
        let jitter = if jitter_ns == 0 { Jitter::None } else { Jitter::Uniform { max_ns: jitter_ns } };
        let mut cluster = SimCluster::builder(graph)
            .network(NetworkModel::tcp_cluster().with_jitter(jitter))
            .seed(seed)
            .build();
        let payloads: Vec<Bytes> = (0..n).map(|i| Bytes::from(vec![i as u8; 16])).collect();
        let out = cluster.run_round(&payloads).expect("failure-free liveness");

        // Validity + agreement + total order.
        prop_assert_eq!(out.delivered.len(), n);
        let reference = &out.delivered[&0];
        prop_assert_eq!(reference.len(), n);
        for (server, seq) in &out.delivered {
            prop_assert_eq!(seq, reference, "server {} diverged", server);
        }
        // Integrity: delivered exactly the broadcast payloads, once each.
        for (i, (origin, payload)) in reference.iter().enumerate() {
            prop_assert_eq!(*origin as usize, i);
            prop_assert_eq!(payload, &payloads[i]);
        }
    }

    /// Crashes within the liveness bound: agreement + total order among
    /// survivors, and only genuinely-broadcast messages delivered.
    #[test]
    fn properties_hold_under_crashes(
        n in 8usize..14,
        seed in 0u64..5000,
        victim_count in 1usize..3,
        partial_sends in 0u64..4,
        crash_delay_ns in 0u64..200_000,
    ) {
        // Binomial graphs have high connectivity: plenty of headroom for
        // 1–2 victims.
        let graph = binomial_graph(n);
        let k = vertex_connectivity(&graph);
        prop_assume!(victim_count < k);

        let mut plan = FailurePlan::none();
        for v in 0..victim_count {
            let victim = (n - 1 - v) as u32;
            if v == 0 && partial_sends > 0 {
                // §2.3's partial-broadcast crash for the first victim.
                plan = plan.fail_after_sends(victim, partial_sends);
            } else {
                plan = plan.fail_at(victim, SimTime::from_ns(1 + crash_delay_ns));
            }
        }
        let mut cluster = SimCluster::builder(graph)
            .network(NetworkModel::tcp_cluster().with_jitter(Jitter::Uniform { max_ns: 5_000 }))
            .fd_detection_delay(SimTime::from_us(300))
            .failures(plan)
            .seed(seed)
            .build();
        let payloads: Vec<Bytes> = (0..n).map(|i| Bytes::from(vec![i as u8; 16])).collect();
        let out = cluster.run_round(&payloads).expect("f < k keeps liveness");

        let survivors: Vec<u32> = (0..(n - victim_count) as u32).collect();
        // Every survivor delivers; a victim may legitimately appear too
        // if it delivered before its crash instant — and then it must
        // agree with everyone else (set agreement covers every server
        // that delivers, dead or alive).
        for &s in &survivors {
            prop_assert!(out.delivered.contains_key(&s), "survivor {} missing", s);
        }
        let reference = &out.delivered[&0];
        for (s, seq) in &out.delivered {
            prop_assert_eq!(seq, reference, "server {} diverged", s);
        }
        // Integrity under failures: every delivered message matches what
        // its origin actually broadcast; survivor messages are all there.
        for (origin, payload) in reference {
            prop_assert_eq!(payload, &payloads[*origin as usize]);
        }
        for &s in &survivors {
            prop_assert!(
                reference.iter().any(|&(o, _)| o == s),
                "validity: survivor {}'s message missing", s
            );
        }
    }

    /// Multi-round execution stays consistent: three consecutive rounds
    /// with a crash in the middle one.
    #[test]
    fn multi_round_consistency_with_mid_crash(
        seed in 0u64..5000,
        crash_after in 1u64..6,
    ) {
        let n = 9;
        let graph = binomial_graph(n);
        let mut cluster = SimCluster::builder(graph)
            .network(NetworkModel::ib_verbs().with_jitter(Jitter::Uniform { max_ns: 2_000 }))
            .fd_detection_delay(SimTime::from_us(100))
            .seed(seed)
            .build();
        let payloads: Vec<Bytes> = (0..n).map(|i| Bytes::from(vec![i as u8; 8])).collect();

        let r0 = cluster.run_round(&payloads).expect("round 0");
        prop_assert_eq!(r0.delivered.len(), n);

        // Victim dies `crash_after` sends into round 1.
        cluster.schedule_crash(cluster.clock(), 8);
        let _ = crash_after; // timing handled by FD; victim sends nothing in round 1
        let r1 = cluster.run_round(&payloads).expect("round 1 with crash");
        let ref1 = &r1.delivered[&0];
        for seq in r1.delivered.values() {
            prop_assert_eq!(seq, ref1);
        }

        let r2 = cluster.run_round(&payloads).expect("round 2 after crash");
        prop_assert_eq!(r2.delivered.len(), n - 1);
        let ref2 = &r2.delivered[&0];
        prop_assert_eq!(ref2.len(), n - 1, "dead server tagged out by round 2");
        for seq in r2.delivered.values() {
            prop_assert_eq!(seq, ref2);
        }
    }
}
