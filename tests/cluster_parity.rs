//! Cross-backend parity: the same scripted scenario, run once over the
//! discrete-event simulator and once over real TCP sockets — through the
//! *same* `Cluster` facade code — must produce byte-identical delivery
//! sequences at every surviving server.
//!
//! This is the paper's central claim (§4–§5: the analysed, simulated,
//! and deployed systems are the same algorithm) reduced to an
//! executable assertion. The protocol's delivery order is deterministic
//! (origin-ascending per round) and both transports preserve per-server
//! delivery order, so nothing about thread scheduling, socket timing, or
//! simulated virtual time may leak into what the application observes.

use allconcur::prelude::*;
use allconcur_graph::gs::gs_digraph;
use bytes::Bytes;
use std::collections::BTreeMap;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(20);

/// The scripted scenario: 8 servers on GS(8,3); two healthy rounds, a
/// crash of server 6, then two more rounds among the survivors. Returns
/// every server's full A-delivery history.
fn run_scenario(mut cluster: Cluster) -> BTreeMap<ServerId, Vec<Delivery>> {
    let n = cluster.n();
    assert_eq!(n, 8);
    let mut history: BTreeMap<ServerId, Vec<Delivery>> = BTreeMap::new();

    let payloads = |round: u64| -> Vec<Bytes> {
        (0..n).map(|i| Bytes::from(format!("r{round}-from-{i}").into_bytes())).collect()
    };

    for round in 0..2u64 {
        let out = cluster.run_round(&payloads(round), TIMEOUT).unwrap_or_else(|e| {
            panic!("[{}] healthy round {round} failed: {e}", cluster.backend())
        });
        for (id, delivery) in out {
            history.entry(id).or_default().push(delivery);
        }
    }

    // One crash mid-scenario. GS(8,3) has vertex-connectivity 3, so the
    // remaining 7 servers keep both safety and liveness.
    cluster.crash(6).expect("crash server 6");
    assert!(!cluster.is_live(6));

    for round in 2..4u64 {
        let out = cluster.run_round(&payloads(round), TIMEOUT).unwrap_or_else(|e| {
            panic!("[{}] post-crash round {round} failed: {e}", cluster.backend())
        });
        assert_eq!(out.len(), 7, "[{}] survivors in round {round}", cluster.backend());
        for (id, delivery) in out {
            history.entry(id).or_default().push(delivery);
        }
    }

    cluster.shutdown().expect("clean shutdown");
    history
}

#[test]
fn sim_and_tcp_transports_deliver_identical_sequences() {
    let graph = gs_digraph(8, 3).unwrap();

    let sim_history = run_scenario(Cluster::sim(graph.clone()));
    let tcp_history = run_scenario(Cluster::tcp(graph).expect("loopback cluster"));

    // Identical server coverage (0..=7 with 6 crashed after round 1).
    assert_eq!(sim_history.keys().collect::<Vec<_>>(), tcp_history.keys().collect::<Vec<_>>());

    for (id, sim_seq) in &sim_history {
        let tcp_seq = &tcp_history[id];
        assert_eq!(
            sim_seq.len(),
            tcp_seq.len(),
            "server {id}: delivery count differs between backends"
        );
        for (sim_d, tcp_d) in sim_seq.iter().zip(tcp_seq) {
            assert_eq!(sim_d.round, tcp_d.round, "server {id}: round numbering differs");
            assert_eq!(
                sim_d.messages, tcp_d.messages,
                "server {id} round {}: delivered bytes differ between sim and TCP",
                sim_d.round
            );
        }
    }

    // Spot-check the scenario's shape, so parity cannot pass vacuously:
    // 4 rounds at survivors, 2 at the victim; post-crash rounds exclude
    // the victim's origin.
    assert_eq!(sim_history[&0].len(), 4);
    assert_eq!(sim_history[&6].len(), 2);
    let last = sim_history[&0].last().unwrap();
    assert_eq!(last.round, 3);
    assert_eq!(last.origins(), vec![0, 1, 2, 3, 4, 5, 7]);
    assert_eq!(last.payload_of(3).map(|b| b.as_ref().to_vec()), Some(b"r3-from-3".to_vec()));
}

#[test]
fn parity_holds_for_streaming_submission() {
    // The pipelined surface: submit three rounds of payloads up front,
    // then stream deliveries — same bytes on both backends.
    let graph = gs_digraph(8, 3).unwrap();
    let run = |mut cluster: Cluster| -> Vec<Vec<(ServerId, Bytes)>> {
        for round in 0..3u64 {
            for id in 0..8u32 {
                let handle =
                    cluster.submit(id, Bytes::from(format!("s{round}-{id}").into_bytes())).unwrap();
                // Correlation metadata: the k-th submission through one
                // origin carries per-origin sequence k — the round that
                // will carry it, under pipelined submission.
                assert_eq!(handle.origin(), id);
                assert_eq!(handle.origin_seq(), round);
            }
        }
        let seqs: Vec<Vec<(ServerId, Bytes)>> =
            cluster.deliveries(4, TIMEOUT).take(3).map(|d| d.messages).collect();
        cluster.shutdown().unwrap();
        seqs
    };

    let sim_seq = run(Cluster::sim(graph.clone()));
    let tcp_seq = run(Cluster::tcp(graph).expect("loopback cluster"));
    assert_eq!(sim_seq.len(), 3);
    assert_eq!(sim_seq, tcp_seq, "streamed rounds differ between backends");
}
