//! The nemesis suite: seeded fault-injection scenarios with the
//! always-on atomic-broadcast property checker.
//!
//! Thirty generated scenarios (two full passes over the 5-fault-class ×
//! 3-round-window matrix) run on the discrete-event simulator. Every
//! scenario asserts, on every server, the four properties of §2.1–2.2 —
//! validity, uniform agreement, integrity, total order — plus RSM
//! snapshot convergence after the run settles.
//!
//! **Reproducing a failure:** execution is fully deterministic per seed.
//! A failing case panics with its seed; replay it with
//! `Scenario::generate(seed).run_sim()` (or
//! `cargo run -p allconcur-nemesis --example sweep -- <seed> <seed+1>`).

use allconcur::prelude::*;
use allconcur_nemesis::{FaultClass, NemesisAction, NemesisPlan, Scenario};
use std::collections::BTreeSet;
use std::time::Duration;

/// Run one pass of seeds, asserting green properties and real progress.
fn run_seeds(seeds: impl Iterator<Item = u64>) {
    for seed in seeds {
        let scenario = Scenario::generate(seed);
        let report = scenario.run_sim().unwrap_or_else(|e| {
            panic!(
                "{scenario} FAILED: {e}\n\
                 replay deterministically with `Scenario::generate({seed}).run_sim()`"
            )
        });
        assert!(report.rounds > 0, "{scenario} delivered no rounds");
        assert!(report.resolved > 0, "{scenario} resolved no commands");
        if scenario.class == FaultClass::MessageLoss {
            assert!(report.dropped > 0, "{scenario} injected loss but nothing was dropped");
        }
        if matches!(scenario.class, FaultClass::CrashRestart | FaultClass::Churn) {
            assert!(report.epochs > 1, "{scenario} never exercised the rejoin path");
        }
    }
}

#[test]
fn seeded_scenarios_first_matrix_pass() {
    // Seeds 0..15: one of each fault class × window ∈ {1, 4, 8}.
    run_seeds(0..15);
}

#[test]
fn seeded_scenarios_second_matrix_pass() {
    // Seeds 15..30: a second independent pass (different sizes, victims,
    // link choices, rates, and timings).
    run_seeds(15..30);
}

#[test]
fn generated_matrix_spans_all_classes_and_windows() {
    let combos: BTreeSet<(String, usize)> = (0..15)
        .map(|s| {
            let sc = Scenario::generate(s);
            (sc.class.to_string(), sc.window)
        })
        .collect();
    assert_eq!(combos.len(), 15, "5 fault classes × window ∈ {{1, 4, 8}}");
    for window in [1usize, 4, 8] {
        for class in ["partition+heal", "crash-restart", "message-loss", "delay-spike", "churn"] {
            assert!(combos.contains(&(class.to_string(), window)), "missing {class} @ W={window}");
        }
    }
}

#[test]
fn failing_seed_replays_byte_for_byte() {
    // The reproducibility contract behind the printed-seed workflow:
    // the same seed yields the same plan and the same report.
    for seed in [3u64, 11, 24] {
        let a = Scenario::generate(seed);
        let b = Scenario::generate(seed);
        assert_eq!(a.plan, b.plan, "seed {seed} plans diverged");
        assert_eq!(a.run_sim().unwrap(), b.run_sim().unwrap(), "seed {seed} executions diverged");
    }
}

#[test]
fn scripted_partition_with_pipelined_rounds() {
    // A hand-written plan (no generator): deep window, long asymmetric +
    // symmetric partition spanning most of the workload, healed late.
    // Everything submitted during the partition must still agree.
    let plan = NemesisPlan::new()
        .at(1, NemesisAction::Fault(FaultCommand::Isolate { from: 0, to: 1 }))
        .at(
            2,
            NemesisAction::Fault(FaultCommand::Partition {
                groups: vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]],
            }),
        )
        .at(9, NemesisAction::Fault(FaultCommand::HealPartitions));
    let scenario = Scenario {
        seed: 0,
        n: 8,
        window: 8,
        ticks: 12,
        class: FaultClass::PartitionHeal,
        plan,
        tick_budget: Duration::from_millis(3),
        burst: 1,
        admission: None,
        durability: None,
        audit_interval: None,
    };
    let report = scenario.run_sim().unwrap_or_else(|e| panic!("scripted partition: {e}"));
    assert_eq!(report.resolved, 12 * 8, "every command resolved across the partition");
    assert_eq!(report.failed, 0);
}

#[test]
fn scripted_loss_and_reorder_combination() {
    // Loss and reordering on the same overlay simultaneously — the
    // combination neither generated class produces on its own.
    let overlay = gs_digraph(8, 3).unwrap();
    let (a, b) = (0u32, overlay.successors(0)[0]);
    let (c, d) = (4u32, overlay.successors(4)[1]);
    let plan = NemesisPlan::new()
        .at(1, NemesisAction::Fault(FaultCommand::Drop { from: a, to: b, ppm: 600_000 }))
        .at(1, NemesisAction::Fault(FaultCommand::Reorder { from: c, to: d, burst: 8 }))
        .at(8, NemesisAction::Fault(FaultCommand::ClearLinkFaults));
    let scenario = Scenario {
        seed: 1,
        n: 8,
        window: 4,
        ticks: 10,
        class: FaultClass::MessageLoss,
        plan,
        tick_budget: Duration::from_millis(3),
        burst: 1,
        admission: None,
        durability: None,
        audit_interval: None,
    };
    let report = scenario.run_sim().unwrap_or_else(|e| panic!("loss+reorder: {e}"));
    assert!(report.dropped > 0, "the lossy link saw no traffic");
    assert_eq!(report.resolved, 10 * 8);
}
