//! End-to-end durability: durable acknowledgment, whole-cluster crash
//! recovery, torn-write tolerance, bounded rollback, and the chunked
//! catch-up path — driven through the public `Service` API.

use allconcur::prelude::*;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(30);

fn put(uid: u64) -> KvCommand {
    KvCommand::Put { key: uid.to_le_bytes().to_vec().into(), value: b"durable".to_vec().into() }
}

fn overlay(n: usize) -> Digraph {
    gs_digraph(n, 3).expect("valid overlay")
}

fn durable_service(n: usize, fsync_every: u64) -> Service<KvStore> {
    Service::with_durability(
        Cluster::sim(overlay(n)),
        &KvStore::default(),
        DurabilityStore::memory(n),
        DurabilityConfig::deterministic(fsync_every),
    )
    .expect("construct durable service")
}

/// Every command acknowledged before a kill-everyone crash is present
/// after recovery from the disks alone.
#[test]
fn acknowledged_commands_survive_whole_cluster_crash() {
    let n = 6;
    let mut kv = durable_service(n, 4);
    let mut acked: Vec<u64> = Vec::new();
    for uid in 0..40u64 {
        let origin = (uid % n as u64) as ServerId;
        kv.execute(origin, &put(uid), TIMEOUT).expect("durable ack");
        acked.push(uid);
    }
    // Power loss: drop the whole deployment, keep only the disks.
    let mut store = kv.shutdown_into_store().unwrap().expect("durability was on");
    for i in 0..n {
        store.mem_disk_mut(i).unwrap().crash();
    }
    let (kv2, report) = Service::recover(
        Cluster::sim(overlay(n)),
        &KvStore::default(),
        store,
        DurabilityConfig::deterministic(4),
    )
    .expect("recover from disks");
    assert_eq!(report.epoch, 1);
    assert!(report.recovered_rounds > 0);
    for uid in acked {
        let key = uid.to_le_bytes();
        assert_eq!(
            kv2.query_local(0).unwrap().get_local(&key),
            Some(&b"durable"[..]),
            "acknowledged uid {uid} lost by recovery"
        );
    }
}

/// Unacknowledged tail rounds may roll back, but never more than the
/// group-commit window, and never divergently across replicas.
#[test]
fn rollback_is_bounded_by_group_commit_window() {
    let n = 6;
    let fsync_every = 8;
    let mut kv = durable_service(n, fsync_every);
    for uid in 0..20u64 {
        kv.execute(0, &put(uid), TIMEOUT).unwrap();
    }
    // Leave an unacknowledged, unsynced tail behind.
    for uid in 20..25u64 {
        kv.submit(0, &put(uid)).unwrap();
    }
    while kv.pump(Duration::from_millis(200)).unwrap() {}
    let agreed = kv.wal(0).unwrap().appended_rounds();
    let durable = kv.durable_rounds().unwrap();
    assert!(
        agreed - durable <= fsync_every,
        "unsynced tail {} exceeds the fsync window {fsync_every}",
        agreed - durable
    );
    let mut store = kv.shutdown_into_store().unwrap().unwrap();
    for i in 0..n {
        store.mem_disk_mut(i).unwrap().crash();
    }
    let (kv2, report) = Service::recover(
        Cluster::sim(overlay(n)),
        &KvStore::default(),
        store,
        DurabilityConfig::deterministic(fsync_every),
    )
    .unwrap();
    assert!(report.recovered_rounds >= durable, "recovery lost durable rounds");
    // All replicas recovered to the same state (no divergence).
    let reference = kv2.replica(0).unwrap().snapshot();
    for id in 1..n as ServerId {
        assert_eq!(kv2.replica(id).unwrap().snapshot(), reference, "replica {id} diverged");
    }
}

/// A torn tail write (partial frame on one server) is trimmed on
/// recovery; replicas still converge and acknowledged commands survive.
#[test]
fn torn_tail_write_never_diverges_replicas() {
    let n = 6;
    let mut kv = durable_service(n, 0); // no count trigger: tail stays unsynced
    let mut acked = Vec::new();
    for uid in 0..6u64 {
        kv.execute(0, &put(uid), TIMEOUT).unwrap(); // commit-waits: fsyncs
        acked.push(uid);
    }
    // Submit more without waiting so unsynced frames accumulate, then
    // settle agreement (not the disks): pump until deliveries stop.
    for uid in 6..12u64 {
        kv.submit(0, &put(uid)).unwrap();
    }
    while kv.pump(Duration::from_millis(200)).unwrap() {}
    assert!(
        kv.durable_rounds().unwrap() < kv.wal(0).unwrap().appended_rounds(),
        "test needs an unsynced tail to tear"
    );
    let mut store = kv.shutdown_into_store().unwrap().unwrap();
    for i in 0..n {
        let mem = store.mem_disk_mut(i).unwrap();
        // Tear a few bytes into every unsynced segment tail, then crash.
        let names: Vec<String> =
            mem.list().unwrap().into_iter().filter(|f| f.starts_with("wal-")).collect();
        for name in names {
            if mem.unsynced_len(&name) > 0 {
                mem.tear(&name, 3);
            }
        }
        mem.crash();
    }
    let (kv2, _report) = Service::recover(
        Cluster::sim(overlay(n)),
        &KvStore::default(),
        store,
        DurabilityConfig::deterministic(0),
    )
    .unwrap();
    let reference = kv2.replica(0).unwrap().snapshot();
    for id in 1..n as ServerId {
        assert_eq!(kv2.replica(id).unwrap().snapshot(), reference, "replica {id} diverged");
    }
    for uid in acked {
        let key = uid.to_le_bytes();
        assert_eq!(
            kv2.query_local(0).unwrap().get_local(&key),
            Some(&b"durable"[..]),
            "acknowledged uid {uid} lost to a torn write"
        );
    }
}

/// A server whose log already covers the reference snapshot catches up
/// from frames alone; the report records the transfer shape.
#[test]
fn recovery_report_tracks_incremental_catchup() {
    let n = 6;
    let mut kv = durable_service(n, 1); // every round durable everywhere
    for uid in 0..10u64 {
        kv.execute(0, &put(uid), TIMEOUT).unwrap();
    }
    let mut store = kv.shutdown_into_store().unwrap().unwrap();
    // Server 3's disk loses its unsynced tail AND a few synced frames —
    // simulate by tearing deep into the segment, leaving it lagging.
    {
        let mem = store.mem_disk_mut(3).unwrap();
        let names: Vec<String> =
            mem.list().unwrap().into_iter().filter(|f| f.starts_with("wal-")).collect();
        for name in names {
            let data = mem.read(&name).unwrap().unwrap();
            // Rewrite the file to half length: a valid prefix of frames
            // followed by one torn frame.
            let keep = data.len() / 2;
            mem.remove(&name).unwrap();
            mem.append(&name, &data[..keep]).unwrap();
        }
        mem.sync().unwrap();
        mem.crash();
    }
    for i in 0..n {
        store.mem_disk_mut(i).unwrap().crash();
    }
    let (kv2, report) = Service::recover(
        Cluster::sim(overlay(n)),
        &KvStore::default(),
        store,
        DurabilityConfig::deterministic(1),
    )
    .unwrap();
    assert_eq!(report.recovered_rounds, 10, "full history durable at fsync_every=1");
    assert!(
        report.frames_only.contains(&3),
        "the lagging server should catch up from log frames alone, got {report:?}"
    );
    assert!(report.catchup_chunks > 0);
    let reference = kv2.replica(0).unwrap().snapshot();
    for id in 1..n as ServerId {
        assert_eq!(kv2.replica(id).unwrap().snapshot(), reference, "replica {id} diverged");
    }
}

/// The whole WAL/recovery path works identically over real files.
#[test]
fn file_disk_round_trip() {
    let n = 6;
    let root = std::env::temp_dir().join(format!("allconcur-durability-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let store = DurabilityStore::on_disk(&root, n).unwrap();
    let mut kv = Service::with_durability(
        Cluster::sim(overlay(n)),
        &KvStore::default(),
        store,
        DurabilityConfig::deterministic(2),
    )
    .unwrap();
    for uid in 0..12u64 {
        kv.execute((uid % n as u64) as ServerId, &put(uid), TIMEOUT).unwrap();
    }
    drop(kv.shutdown_into_store().unwrap()); // drop the handles; files persist
    let store = DurabilityStore::on_disk(&root, n).unwrap();
    let (kv2, report) = Service::recover(
        Cluster::sim(overlay(n)),
        &KvStore::default(),
        store,
        DurabilityConfig::deterministic(2),
    )
    .unwrap();
    assert!(report.recovered_rounds > 0);
    for uid in 0..12u64 {
        let key = uid.to_le_bytes();
        assert_eq!(kv2.query_local(0).unwrap().get_local(&key), Some(&b"durable"[..]));
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// Reconfiguration with durability on: epoch bumps, logs truncate, and
/// the rejoin path streams state in bounded chunks.
#[test]
fn reconfigure_bumps_epoch_and_preserves_state() {
    let n = 6;
    let mut kv = durable_service(n, 1);
    for uid in 0..8u64 {
        kv.execute(0, &put(uid), TIMEOUT).unwrap();
    }
    assert_eq!(kv.durability_epoch(), Some(0));
    kv.reconfigure(overlay(n), TIMEOUT).unwrap();
    assert_eq!(kv.durability_epoch(), Some(1));
    assert_eq!(kv.wal(0).unwrap().appended_rounds(), 0, "rounds restart per epoch");
    for uid in 100..108u64 {
        kv.execute(1, &put(uid), TIMEOUT).unwrap();
    }
    kv.sync(TIMEOUT).unwrap();
    for uid in (0..8u64).chain(100..108) {
        let key = uid.to_le_bytes();
        assert_eq!(
            kv.query_local(2).unwrap().get_local(&key),
            Some(&b"durable"[..]),
            "uid {uid} lost across reconfiguration"
        );
    }
}
